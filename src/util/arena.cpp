#include "util/arena.hpp"

#include <algorithm>
#include <cstdint>

namespace dn {

namespace {
constexpr std::size_t kMinBlockBytes = 256;
}  // namespace

Arena::Arena(std::size_t first_block_bytes)
    : next_block_bytes_(std::max(first_block_bytes, kMinBlockBytes)) {}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  auto aligned = [&](std::byte* p) {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t rem = addr % align;
    return rem == 0 ? p : p + (align - rem);
  };
  std::byte* p = ptr_ ? aligned(ptr_) : nullptr;
  if (!p || p + bytes > end_) {
    grow(bytes + align);
    p = aligned(ptr_);
  }
  ptr_ = p + bytes;
  used_ += bytes;
  return p;
}

void Arena::grow(std::size_t bytes) {
  // Reuse a retained block (after reset) when one is big enough.
  while (ptr_ ? cur_ + 1 < blocks_.size() : cur_ < blocks_.size()) {
    const std::size_t next = ptr_ ? cur_ + 1 : cur_;
    if (blocks_[next].size >= bytes) {
      cur_ = next;
      ptr_ = blocks_[next].data.get();
      end_ = ptr_ + blocks_[next].size;
      return;
    }
    // Too small for this request: skip past it (it stays owned; later
    // resets may still reuse it for smaller requests).
    cur_ = next;
    ptr_ = blocks_[next].data.get();
    end_ = ptr_;  // Zero room: forces another grow step.
  }
  const std::size_t size = std::max(bytes, next_block_bytes_);
  next_block_bytes_ = size * 2;
  Block b{std::make_unique<std::byte[]>(size), size};
  blocks_.push_back(std::move(b));
  cur_ = blocks_.size() - 1;
  ptr_ = blocks_.back().data.get();
  end_ = ptr_ + size;
}

void Arena::reset() noexcept {
  used_ = 0;
  cur_ = 0;
  if (blocks_.empty()) {
    ptr_ = end_ = nullptr;
  } else {
    ptr_ = blocks_.front().data.get();
    end_ = ptr_ + blocks_.front().size;
  }
}

std::size_t Arena::bytes_reserved() const noexcept {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.size;
  return total;
}

}  // namespace dn
