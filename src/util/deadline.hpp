// dn::Deadline — cooperative cancellation for the analysis pipeline.
//
// A production batch run must bound its worst case: one pathological net
// (a 10k-node extraction, a barely-convergent Newton solve) cannot be
// allowed to hold a worker hostage forever. A Deadline is a small value
// type combining an optional wall-clock expiry with a shared cancel flag;
// copies observe the same cancellation.
//
// Propagation is ambient rather than threaded through every constructor:
// ScopedDeadline installs a deadline for the current thread, and the
// long-running loops (LinearSim/NonlinearSim steps, PRIMA Krylov
// iterations, TICER elimination passes, alignment-table characterization,
// batch workers) poll deadline_checkpoint(), which throws DeadlineError
// when the active deadline has expired. The Status boundary maps that to
// kDeadlineExceeded. With no deadline installed a checkpoint is two
// thread-local reads and no clock access — free enough for step loops.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "util/status.hpp"

namespace dn {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// No expiry, no cancel flag: never expires.
  Deadline() = default;

  /// Expires `seconds` from now (<= 0 means already expired).
  static Deadline after(double seconds);

  /// No expiry but cancellable: expires only when cancel() is called.
  static Deadline cancellable();

  /// True when this deadline can never expire.
  bool unlimited() const { return !has_expiry_ && !cancelled_; }

  /// True once past the expiry or after cancel() on any copy.
  bool expired() const {
    if (cancelled_ && cancelled_->load(std::memory_order_relaxed)) return true;
    return has_expiry_ && Clock::now() >= expiry_;
  }

  /// Flags every copy of this deadline as expired. No-op on a default
  /// (non-cancellable) deadline.
  void cancel() const {
    if (cancelled_) cancelled_->store(true, std::memory_order_relaxed);
  }

  /// Seconds until expiry (+inf when unlimited, <= 0 when expired).
  double remaining_s() const;

  /// kDeadlineExceeded naming `where` when expired, OK otherwise.
  Status check(const char* where) const;

 private:
  bool has_expiry_ = false;
  Clock::time_point expiry_{};
  std::shared_ptr<std::atomic<bool>> cancelled_;  // Shared across copies.
};

namespace detail {
// The ambient deadline is stored behind a global "any deadline anywhere"
// flag so the common case (no deadline in the whole process) costs one
// relaxed atomic load per checkpoint, mirroring the obs-metrics pattern.
inline std::atomic<bool> g_any_deadline{false};
const Deadline* current_deadline_ptr() noexcept;
void set_current_deadline(const Deadline* d) noexcept;
}  // namespace detail

/// The deadline installed on this thread (unlimited when none).
const Deadline& current_deadline() noexcept;

/// Throws DeadlineError(`where`) when the ambient deadline has expired.
/// Cost without any installed deadline: one relaxed atomic load.
inline void deadline_checkpoint(const char* where) {
  if (!detail::g_any_deadline.load(std::memory_order_relaxed)) return;
  const Deadline* d = detail::current_deadline_ptr();
  if (d && d->expired())
    throw DeadlineError(std::string("deadline exceeded in ") + where);
}

/// Installs `d` as the current thread's ambient deadline for this scope,
/// restoring the previous one (supports nesting) on destruction.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(const Deadline& d);
  ~ScopedDeadline();

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  Deadline deadline_;            // Stable storage for the installed pointer.
  const Deadline* previous_;
};

}  // namespace dn
