#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace dn::json {

const char* type_name(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : items_)
    if (k == key) return v;
  items_.emplace_back(key, Value());
  return items_.back().second;
}

const Value* Object::find(const std::string& key) const {
  for (const auto& [k, v] : items_)
    if (k == key) return &v;
  return nullptr;
}

StatusOr<bool> Value::require_bool(const char* what) const {
  if (!is_bool())
    return Status::InvalidArgument(std::string(what) + " must be a boolean, got " +
                                   type_name(type_));
  return bool_;
}

StatusOr<double> Value::require_number(const char* what) const {
  if (!is_number())
    return Status::InvalidArgument(std::string(what) + " must be a number, got " +
                                   type_name(type_));
  return num_;
}

StatusOr<int> Value::require_int(const char* what) const {
  if (!is_number() || num_ != std::floor(num_) || std::abs(num_) > 1e9)
    return Status::InvalidArgument(std::string(what) + " must be an integer");
  return static_cast<int>(num_);
}

StatusOr<std::string> Value::require_string(const char* what) const {
  if (!is_string())
    return Status::InvalidArgument(std::string(what) + " must be a string, got " +
                                   type_name(type_));
  return str_;
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN; null is the least-bad.
    os << "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

namespace {

void write_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void Value::dump(std::ostream& os) const {
  switch (type_) {
    case Type::kNull: os << "null"; break;
    case Type::kBool: os << (bool_ ? "true" : "false"); break;
    case Type::kNumber: write_number(os, num_); break;
    case Type::kString: write_string(os, str_); break;
    case Type::kArray: {
      os << '[';
      bool first = true;
      for (const Value& v : *arr_) {
        if (!first) os << ',';
        first = false;
        v.dump(os);
      }
      os << ']';
      break;
    }
    case Type::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : *obj_) {
        if (!first) os << ',';
        first = false;
        write_string(os, k);
        os << ':';
        v.dump(os);
      }
      os << '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::ostringstream os;
  dump(os);
  return os.str();
}

namespace {

/// Recursive-descent parser over a string_view. Errors carry the byte
/// offset so a malformed request line is diagnosable from the response.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Value> parse_document() {
    skip_ws();
    StatusOr<Value> v = parse_value(0);
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  StatusOr<Value> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        StatusOr<std::string> s = parse_string();
        if (!s.ok()) return s.status();
        return Value(std::move(*s));
      }
      case 't':
        if (consume_word("true")) return Value(true);
        return fail("invalid literal");
      case 'f':
        if (consume_word("false")) return Value(false);
        return fail("invalid literal");
      case 'n':
        if (consume_word("null")) return Value(nullptr);
        return fail("invalid literal");
      default: return parse_number();
    }
  }

  StatusOr<Value> parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      pos_ = start;
      return fail("malformed number");
    }
    return Value(v);
  }

  StatusOr<std::string> parse_string() {
    if (!consume('"')) return fail("expected string");
    std::string out;
    while (true) {
      if (eof()) return fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned int cp = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) return fail("truncated \\u escape");
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // Surrogate pairs: a high surrogate must be followed by \uDC00..
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (text_.substr(pos_, 2) != "\\u")
              return fail("unpaired surrogate");
            pos_ += 2;
            unsigned int lo = 0;
            for (int i = 0; i < 4; ++i) {
              if (eof()) return fail("truncated \\u escape");
              const char h = text_[pos_++];
              lo <<= 4;
              if (h >= '0' && h <= '9') lo |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') lo |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') lo |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape");
            }
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          // UTF-8 encode.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
  }

  StatusOr<Value> parse_array(int depth) {
    consume('[');
    Array arr;
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    while (true) {
      skip_ws();
      StatusOr<Value> v = parse_value(depth + 1);
      if (!v.ok()) return v;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return Value(std::move(arr));
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  StatusOr<Value> parse_object(int depth) {
    consume('{');
    Object obj;
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      StatusOr<std::string> key = parse_string();
      if (!key.ok()) return key.status();
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      skip_ws();
      StatusOr<Value> v = parse_value(depth + 1);
      if (!v.ok()) return v;
      obj[*key] = std::move(*v);
      skip_ws();
      if (consume('}')) return Value(std::move(obj));
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<Value> parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::size_t node_count(const Value& v) {
  switch (v.type()) {
    case Type::kArray: {
      std::size_t n = 1;
      for (const Value& e : v.as_array()) n += node_count(e);
      return n;
    }
    case Type::kObject: {
      std::size_t n = 1;
      for (const auto& [key, val] : v.as_object()) {
        (void)key;
        n += node_count(val);
      }
      return n;
    }
    default:
      return 1;
  }
}

}  // namespace dn::json
