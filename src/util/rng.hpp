// Deterministic random number generation for synthetic workloads.
//
// All randomized benches/tests seed explicitly so every run reproduces the
// same nets; wall-clock seeding is deliberately not provided.
#pragma once

#include <cmath>
#include <cstdint>

namespace dn {

/// xoshiro256** by Blackman & Vigna (public domain algorithm), seeded via
/// SplitMix64. Small, fast, and good enough for workload synthesis.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 4-word state.
    std::uint64_t x = seed;
    for (auto& w : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      w = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    return lo + static_cast<int>(next_u64() % span);
  }

  /// Log-uniform double in [lo, hi) — natural for R/C spreads.
  double log_uniform(double lo, double hi) {
    const double llo = std::log(lo), lhi = std::log(hi);
    return std::exp(llo + (lhi - llo) * uniform());
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace dn
