#include "util/numeric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dn {

bool almost_equal(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

double lerp(double x0, double y0, double x1, double y1, double x) {
  if (x1 == x0) return 0.5 * (y0 + y1);
  return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
}

double interp1(std::span<const double> xs, std::span<const double> ys, double x) {
  assert(xs.size() == ys.size());
  if (xs.empty()) throw std::invalid_argument("interp1: empty table");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - xs.begin());
  return lerp(xs[i - 1], ys[i - 1], xs[i], ys[i], x);
}

double interp2(std::span<const double> xs, std::span<const double> ys,
               std::span<const double> z, double x, double y) {
  const std::size_t nx = xs.size();
  const std::size_t ny = ys.size();
  if (nx == 0 || ny == 0 || z.size() != nx * ny)
    throw std::invalid_argument("interp2: bad table shape");
  const double xc = std::clamp(x, xs.front(), xs.back());
  const double yc = std::clamp(y, ys.front(), ys.back());
  auto bracket = [](std::span<const double> v, double q) {
    std::size_t i = static_cast<std::size_t>(
        std::upper_bound(v.begin(), v.end(), q) - v.begin());
    if (i == 0) i = 1;
    if (i >= v.size()) i = v.size() - 1;
    return i;
  };
  if (nx == 1 && ny == 1) return z[0];
  if (nx == 1) {
    const std::size_t i = bracket(ys, yc);
    return lerp(ys[i - 1], z[(i - 1)], ys[i], z[i], yc);
  }
  if (ny == 1) {
    const std::size_t j = bracket(xs, xc);
    return lerp(xs[j - 1], z[j - 1], xs[j], z[j], xc);
  }
  const std::size_t j = bracket(xs, xc);
  const std::size_t i = bracket(ys, yc);
  const double z00 = z[(i - 1) * nx + (j - 1)];
  const double z01 = z[(i - 1) * nx + j];
  const double z10 = z[i * nx + (j - 1)];
  const double z11 = z[i * nx + j];
  const double zl = lerp(xs[j - 1], z00, xs[j], z01, xc);
  const double zh = lerp(xs[j - 1], z10, xs[j], z11, xc);
  return lerp(ys[i - 1], zl, ys[i], zh, yc);
}

std::optional<double> bisect(const std::function<double(double)>& f, double lo,
                             double hi, double xtol, int max_iter) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0) == (fhi > 0)) return std::nullopt;
  for (int it = 0; it < max_iter && (hi - lo) > xtol; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm > 0) == (flo > 0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::optional<double> brent(const std::function<double(double)>& f, double lo,
                            double hi, double xtol, int max_iter) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if ((fa > 0) == (fb > 0)) return std::nullopt;
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  bool mflag = true;
  double d = 0.0;
  for (int it = 0; it < max_iter; ++it) {
    if (fb == 0.0 || std::abs(b - a) < xtol) return b;
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      s = b - fb * (b - a) / (fb - fa);  // Secant.
    }
    const double m = 0.5 * (a + b);
    const bool cond = (s < std::min(m, b) || s > std::max(m, b)) ||
                      (mflag && std::abs(s - b) >= 0.5 * std::abs(b - c)) ||
                      (!mflag && std::abs(s - b) >= 0.5 * std::abs(c - d)) ||
                      (mflag && std::abs(b - c) < xtol) ||
                      (!mflag && std::abs(c - d) < xtol);
    if (cond) {
      s = m;
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if ((fa > 0) != (fs > 0)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return b;
}

double golden_min(const std::function<double(double)>& f, double lo, double hi,
                  double xtol, int max_iter) {
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  for (int it = 0; it < max_iter && (b - a) > xtol; ++it) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

double trapz(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  double acc = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i)
    acc += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
  return acc;
}

std::optional<double> newton_fd(const std::function<double(double)>& f, double x0,
                                double h, double ftol, int max_iter) {
  double x = x0;
  for (int it = 0; it < max_iter; ++it) {
    const double fx = f(x);
    if (std::abs(fx) < ftol) return x;
    const double dfdx = (f(x + h) - f(x - h)) / (2 * h);
    if (dfdx == 0.0 || !std::isfinite(dfdx)) return std::nullopt;
    double step = fx / dfdx;
    // Damp huge steps; keeps the iteration inside sane territory.
    const double max_step = 1e3 * h + 0.5 * std::abs(x);
    if (std::abs(step) > max_step) step = std::copysign(max_step, step);
    x -= step;
    if (!std::isfinite(x)) return std::nullopt;
  }
  return std::abs(f(x)) < ftol * 100 ? std::optional<double>(x) : std::nullopt;
}

std::vector<double> linspace(double lo, double hi, int n) {
  if (n < 2) throw std::invalid_argument("linspace: n must be >= 2");
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = lo + (hi - lo) * i / (n - 1);
  return v;
}

std::vector<double> logspace(double lo, double hi, int n) {
  if (lo <= 0 || hi <= 0) throw std::invalid_argument("logspace: bounds must be > 0");
  if (n < 2) throw std::invalid_argument("logspace: n must be >= 2");
  std::vector<double> v(static_cast<std::size_t>(n));
  const double llo = std::log(lo), lhi = std::log(hi);
  for (int i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = std::exp(llo + (lhi - llo) * i / (n - 1));
  return v;
}

}  // namespace dn
