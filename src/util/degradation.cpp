#include "util/degradation.hpp"

#include "util/metrics.hpp"

namespace dn {

const char* degrade_kind_name(DegradeKind k) {
  switch (k) {
    case DegradeKind::kRtrToRth: return "rtr_to_rth";
    case DegradeKind::kTableToVdd2: return "table_to_vdd2";
    case DegradeKind::kSparseToDense: return "sparse_to_dense";
    case DegradeKind::kMorToUnreduced: return "mor_to_unreduced";
    case DegradeKind::kCount: break;
  }
  return "?";
}

std::vector<Degradation> dedup_degradations(std::vector<Degradation> log) {
  std::vector<Degradation> out;
  for (auto& d : log) {
    bool merged = false;
    for (auto& o : out) {
      if (o.kind == d.kind) {
        o.count += d.count;
        merged = true;
        break;
      }
    }
    if (!merged) out.push_back(std::move(d));
  }
  return out;
}

bool DegradePolicy::allows(DegradeKind k) const {
  switch (k) {
    case DegradeKind::kRtrToRth: return rtr_to_rth;
    case DegradeKind::kTableToVdd2: return table_to_vdd2;
    case DegradeKind::kSparseToDense: return sparse_to_dense;
    case DegradeKind::kMorToUnreduced: return mor_to_unreduced;
    case DegradeKind::kCount: break;
  }
  return false;
}

namespace degrade {

namespace {
thread_local ScopedLog* t_log = nullptr;
}  // namespace

ScopedLog::ScopedLog() : previous_(t_log) { t_log = this; }

ScopedLog::~ScopedLog() { t_log = previous_; }

bool active() noexcept { return t_log != nullptr; }

void record(DegradeKind kind, std::string detail) {
  if (obs::metrics_enabled())
    obs::metrics()
        .counter(std::string("degrade.") + degrade_kind_name(kind))
        .add();
  if (t_log) t_log->entries_.push_back({kind, std::move(detail)});
}

}  // namespace degrade
}  // namespace dn
