// Timing-window <-> delay-noise fixed-point iteration [8][9].
//
// Delay noise depends on how aggressors can align against the victim,
// which is constrained by arrival windows; but the windows themselves
// depend on the noise-augmented delays. Iterating the two converges in a
// few passes ([8][9]; verified by bench_sta_convergence).
//
// Window -> alignment mapping: the worst late victim switches at its LATE
// arrival; an aggressor's input may switch anywhere in its own window, so
// the aggressor-vs-victim input offset ranges over
//     [agg.early - vic.late, agg.late - vic.late].
// Shifting the aggressor input by s shifts its noise pulse by s (the
// linearized network is LTI), so the composite-pulse peak is constrained
// to [peak_ref + lo, peak_ref + hi]. When several aggressors share a
// victim, the composite uses the intersection-style simplification of one
// common window (paper Section 3.1 argues peak-aligned aggressors are
// within 5% anyway).
#pragma once

#include <memory>
#include <vector>

#include "core/delay_noise.hpp"
#include "sta/timing_graph.hpp"

namespace dn {

/// One coupled victim/aggressor pair embedded in the timing graph: the
/// graph nets involved plus the electrical model to analyze.
struct NetCouplingSite {
  int victim_net = -1;      // Graph net whose LATE delay grows.
  int aggressor_net = -1;   // Graph net whose window constrains alignment.
  CoupledNet model;
  /// Per-aggressor graph nets, parallel to model.aggressors. When set
  /// (size == model.aggressors.size()), EACH aggressor's own arrival
  /// window is mapped through the LTI shift property onto a feasible
  /// interval for the composite-pulse peak, and the intersection becomes
  /// the alignment ScanDomain — infeasible offsets are excluded from the
  /// scan before any receiver probe runs. Empty keeps the classic
  /// one-common-window approximation built from `aggressor_net`.
  std::vector<int> aggressor_nets;
};

struct NoiseIterationOptions {
  int max_iterations = 8;
  double tol = 0.5e-12;            // Convergence on extra delays [s].
  DelayNoiseOptions analysis{};    // Per-site analysis configuration.
  SuperpositionOptions engine{};   // Shared engine time frame.
  /// Worker threads for the per-pass site analyses (each site is
  /// independent within a pass: it reads the previous pass's windows and
  /// writes only its own victim's extra delay). 0 = one per hardware
  /// thread; 1 = sequential. Results are identical for any value.
  int jobs = 1;
};

struct NoiseIterationResult {
  std::vector<double> extra_delay;     // Per graph net [s].
  TimingGraph::Windows windows;        // Final windows.
  int iterations = 0;
  bool converged = false;
  std::vector<double> max_extra_history;  // Max extra delay after each pass.
};

NoiseIterationResult iterate_windows_with_noise(
    const TimingGraph& graph, const std::vector<NetCouplingSite>& sites,
    const NoiseIterationOptions& opts = {});

}  // namespace dn
