#include "sta/timing_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace dn {

int TimingGraph::add_primary_input(const std::string& name, double early,
                                   double late) {
  if (late < early)
    throw std::invalid_argument("TimingGraph: window late < early");
  const int id = add_net(name);
  driver_of_[static_cast<std::size_t>(id)] = -1;
  pi_early_[static_cast<std::size_t>(id)] = early;
  pi_late_[static_cast<std::size_t>(id)] = late;
  return id;
}

int TimingGraph::add_net(const std::string& name) {
  for (const auto& n : names_)
    if (n == name)
      throw std::invalid_argument("TimingGraph: duplicate net '" + name + "'");
  names_.push_back(name);
  driver_of_.push_back(-2);
  pi_early_.push_back(0.0);
  pi_late_.push_back(0.0);
  return static_cast<int>(names_.size()) - 1;
}

void TimingGraph::add_gate(int output_net, std::vector<int> input_nets,
                           double delay) {
  if (output_net < 0 || output_net >= num_nets())
    throw std::invalid_argument("TimingGraph: bad output net");
  if (driver_of_[static_cast<std::size_t>(output_net)] != -2)
    throw std::invalid_argument("TimingGraph: net already driven");
  if (input_nets.empty())
    throw std::invalid_argument("TimingGraph: gate without inputs");
  for (int in : input_nets)
    if (in < 0 || in >= num_nets())
      throw std::invalid_argument("TimingGraph: bad input net");
  if (delay < 0) throw std::invalid_argument("TimingGraph: negative delay");
  gates_.push_back({std::move(input_nets), delay});
  driver_of_[static_cast<std::size_t>(output_net)] =
      static_cast<int>(gates_.size()) - 1;
}

int TimingGraph::net_id(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<int>(i);
  throw std::out_of_range("TimingGraph: unknown net '" + name + "'");
}

const std::string& TimingGraph::net_name(int id) const {
  return names_.at(static_cast<std::size_t>(id));
}

bool TimingGraph::is_primary_input(int id) const {
  return driver_of_.at(static_cast<std::size_t>(id)) == -1;
}

double TimingGraph::gate_delay(int output_net) const {
  const int g = driver_of_.at(static_cast<std::size_t>(output_net));
  if (g < 0) throw std::invalid_argument("TimingGraph: net has no gate");
  return gates_[static_cast<std::size_t>(g)].delay;
}

void TimingGraph::set_required(int net, double required) {
  if (net < 0 || net >= num_nets())
    throw std::invalid_argument("TimingGraph: bad endpoint net");
  for (auto& [n, r] : required_) {
    if (n == net) {
      r = required;
      return;
    }
  }
  required_.emplace_back(net, required);
}

TimingGraph::SlackReport TimingGraph::compute_slack(const Windows& w) const {
  if (required_.empty())
    throw std::runtime_error("TimingGraph: no endpoints with required times");
  if (w.late.size() != static_cast<std::size_t>(num_nets()))
    throw std::invalid_argument("TimingGraph: windows size mismatch");
  SlackReport rep;
  for (const auto& [net, req] : required_) {
    const double slack = req - w.late[static_cast<std::size_t>(net)];
    rep.endpoints.push_back(net);
    rep.slack.push_back(slack);
    if (slack < rep.worst_slack) {
      rep.worst_slack = slack;
      rep.worst_endpoint = net;
    }
  }
  return rep;
}

TimingGraph::Windows TimingGraph::compute_windows(
    const std::vector<double>& extra_late_delay) const {
  const std::size_t n = names_.size();
  if (!extra_late_delay.empty() && extra_late_delay.size() != n)
    throw std::invalid_argument("TimingGraph: extra delay size mismatch");

  Windows w;
  w.early.assign(n, 0.0);
  w.late.assign(n, 0.0);
  std::vector<char> done(n, 0);
  std::vector<char> visiting(n, 0);

  // Iterative DFS evaluation (post-order) with cycle detection.
  std::vector<int> stack;
  auto extra = [&](std::size_t i) {
    return extra_late_delay.empty() ? 0.0 : extra_late_delay[i];
  };
  for (int root = 0; root < static_cast<int>(n); ++root) {
    if (done[static_cast<std::size_t>(root)]) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const int net = stack.back();
      const std::size_t ni = static_cast<std::size_t>(net);
      if (done[ni]) {
        stack.pop_back();
        continue;
      }
      const int g = driver_of_[ni];
      if (g == -2)
        throw std::runtime_error("TimingGraph: net '" + names_[ni] +
                                 "' is undriven");
      if (g == -1) {
        w.early[ni] = pi_early_[ni];
        w.late[ni] = pi_late_[ni];
        done[ni] = 1;
        stack.pop_back();
        continue;
      }
      const Gate& gate = gates_[static_cast<std::size_t>(g)];
      bool ready = true;
      for (int in : gate.inputs) {
        if (!done[static_cast<std::size_t>(in)]) {
          if (visiting[static_cast<std::size_t>(in)])
            throw std::runtime_error("TimingGraph: combinational cycle at '" +
                                     names_[static_cast<std::size_t>(in)] + "'");
          visiting[ni] = 1;
          stack.push_back(in);
          ready = false;
        }
      }
      if (!ready) continue;
      double e = 1e300, l = -1e300;
      for (int in : gate.inputs) {
        e = std::min(e, w.early[static_cast<std::size_t>(in)]);
        l = std::max(l, w.late[static_cast<std::size_t>(in)]);
      }
      w.early[ni] = e + gate.delay;
      w.late[ni] = l + gate.delay + extra(ni);
      done[ni] = 1;
      visiting[ni] = 0;
      stack.pop_back();
    }
  }
  return w;
}

}  // namespace dn
