// Gate-level timing graph with arrival windows.
//
// The alignment of aggressor transitions is constrained by the switching
// (arrival) windows computed during timing analysis [1]; and because delay
// noise enlarges those windows, windows and noise must be iterated to a
// fixed point [8][9]. This module provides the window computation; the
// iteration lives in sta/noise_iteration.*.
//
// Model: each node is a net. Primary-input nets carry given arrival
// windows; every other net is driven by exactly one gate whose pin-to-pin
// (+interconnect) delay is a fixed number here — this layer deliberately
// abstracts the electrical analysis, which plugs in through per-net extra
// delays.
#pragma once

#include <string>
#include <vector>

namespace dn {

class TimingGraph {
 public:
  /// Adds a primary input with arrival window [early, late]. Returns net id.
  int add_primary_input(const std::string& name, double early, double late);

  /// Adds an internal net (must be driven by exactly one gate later).
  int add_net(const std::string& name);

  /// Adds a gate driving `output_net` from `input_nets` with base delay
  /// `delay` (same delay for early/late, all inputs).
  void add_gate(int output_net, std::vector<int> input_nets, double delay);

  int net_id(const std::string& name) const;  // Throws if unknown.
  const std::string& net_name(int id) const;
  int num_nets() const { return static_cast<int>(names_.size()); }
  bool is_primary_input(int id) const;
  double gate_delay(int output_net) const;  // Throws for PIs.

  struct Windows {
    std::vector<double> early, late;
  };

  /// Computes arrival windows topologically. `extra_late_delay[n]` (may be
  /// empty = all zero) is added to net n's LATE arrival — the hook for
  /// crosstalk delay noise. Throws on cycles or undriven nets.
  Windows compute_windows(const std::vector<double>& extra_late_delay = {}) const;

  /// Marks a net as a timing endpoint with the given required (latest
  /// allowed) arrival time.
  void set_required(int net, double required);

  struct SlackReport {
    std::vector<int> endpoints;   // Nets with a required time.
    std::vector<double> slack;    // required - late arrival, per endpoint.
    double worst_slack = 1e300;
    int worst_endpoint = -1;
  };

  /// Setup slack at every endpoint for the given windows (e.g. the noisy
  /// windows from the [8][9] iteration). Endpoints without requireds are
  /// ignored; throws if none were set.
  SlackReport compute_slack(const Windows& w) const;

 private:
  struct Gate {
    std::vector<int> inputs;
    double delay = 0.0;
  };
  std::vector<std::string> names_;
  std::vector<int> driver_of_;   // Gate index driving net, -1 = PI, -2 = none.
  std::vector<double> pi_early_, pi_late_;  // Indexed by net id (PIs only).
  std::vector<Gate> gates_;
  std::vector<std::pair<int, double>> required_;  // (net, required time).
};

}  // namespace dn
