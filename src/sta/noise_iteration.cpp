#include "sta/noise_iteration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/composite_pulse.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace dn {

NoiseIterationResult iterate_windows_with_noise(
    const TimingGraph& graph, const std::vector<NetCouplingSite>& sites,
    const NoiseIterationOptions& opts) {
  std::vector<char> victim_seen(static_cast<std::size_t>(graph.num_nets()), 0);
  for (const auto& s : sites) {
    if (s.victim_net < 0 || s.victim_net >= graph.num_nets() ||
        s.aggressor_net < 0 || s.aggressor_net >= graph.num_nets())
      throw std::invalid_argument("noise_iteration: bad site net ids");
    // One site per victim: a victim with several aggressors must model
    // them inside ONE CoupledNet so the composite pulse is correct;
    // letting two sites write the same victim would silently keep only
    // the last one's extra delay.
    auto& seen = victim_seen[static_cast<std::size_t>(s.victim_net)];
    if (seen)
      throw std::invalid_argument(
          "noise_iteration: duplicate victim net across sites; merge the "
          "aggressors into one CoupledNet");
    seen = 1;
    if (!s.aggressor_nets.empty()) {
      if (s.aggressor_nets.size() != s.model.aggressors.size())
        throw std::invalid_argument(
            "noise_iteration: aggressor_nets must parallel model.aggressors");
      for (const int an : s.aggressor_nets)
        if (an < 0 || an >= graph.num_nets())
          throw std::invalid_argument(
              "noise_iteration: bad aggressor_nets net id");
    }
    s.model.validate();
  }

  // Engines are window-independent: characterize each site once.
  std::vector<std::unique_ptr<SuperpositionEngine>> engines;
  engines.reserve(sites.size());
  for (const auto& s : sites)
    engines.push_back(
        std::make_unique<SuperpositionEngine>(s.model, opts.engine));

  NoiseIterationResult out;
  out.extra_delay.assign(static_cast<std::size_t>(graph.num_nets()), 0.0);

  // Within one pass every site analysis is independent: it reads the
  // previous pass's windows/extra delays and writes only its own victim's
  // slot (duplicate victims are rejected above). Fan the sites across the
  // pool each pass; the convergence reduction stays sequential so the
  // result is identical for any job count.
  ThreadPool pool(ThreadPool::resolve_jobs(opts.jobs));

  static obs::Counter& c_passes = obs::metrics().counter("sta.passes");
  static obs::Histogram& h_pass =
      obs::metrics().histogram("sta.pass.seconds");
  static obs::Gauge& g_max_change =
      obs::metrics().gauge("sta.last_max_change");

  for (int pass = 1; pass <= opts.max_iterations; ++pass) {
    obs::StageScope stage("sta.pass", "sta", h_pass);
    c_passes.add();
    out.iterations = pass;
    out.windows = graph.compute_windows(out.extra_delay);

    std::vector<double> site_extra(sites.size(), 0.0);
    pool.parallel_for(sites.size(), [&](std::size_t i) {
      const auto& site = sites[i];
      auto& eng = *engines[i];
      const std::size_t vi = static_cast<std::size_t>(site.victim_net);

      // Aggressor-vs-victim input offset window (victim at late arrival).
      const double vic_late =
          out.windows.late[vi] - out.extra_delay[vi];  // Its own noise is
      // not part of the victim's launch time; remove the self-term.

      // Map input-offset windows onto the composite-pulse peak. Placing
      // the peak at t starts aggressor k's input at offset
      // shifts[k] + (t - t_peak) vs the victim's nominal switch (LTI),
      // so window [lo_k, hi_k] on the offset constrains the peak to
      // [t_peak - shifts[k] + lo_k, t_peak - shifts[k] + hi_k].
      const double rth = eng.victim_model().model.rth;
      const CompositeAlignment comp = align_aggressor_peaks(eng, rth);
      const double peak_ref = comp.params.t_peak;

      DelayNoiseOptions a = opts.analysis;
      if (!site.aggressor_nets.empty()) {
        // Per-pin windows: intersect each aggressor's feasible peak
        // interval into the scan domain — the search never probes an
        // offset where some aggressor cannot switch. Greedy by coupled
        // charge: when an aggressor's window cannot overlap the stronger
        // ones', its constraint is skipped (the pulse stays in the
        // composite, which is the conservative side) instead of emptying
        // the domain and silently unconstraining the scan.
        std::vector<double> ccap(site.model.aggressors.size(), 0.0);
        for (const auto& cc : site.model.couplings)
          ccap[static_cast<std::size_t>(cc.aggressor)] += cc.c;
        std::vector<std::size_t> order(site.aggressor_nets.size());
        for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t x, std::size_t y) {
                           return ccap[x] > ccap[y];
                         });
        ScanDomain dom;
        for (const std::size_t k : order) {
          const std::size_t an =
              static_cast<std::size_t>(site.aggressor_nets[k]);
          const double lo_k = out.windows.early[an] - vic_late;
          const double hi_k = out.windows.late[an] - vic_late;
          ScanDomain trial = dom;
          trial.intersect(peak_ref - comp.shifts[k] + lo_k,
                          peak_ref - comp.shifts[k] + hi_k);
          if (!trial.empty()) dom = std::move(trial);
        }
        a.search.domain = dom;
        if (!dom.empty() && !dom.unconstrained()) {
          a.search.window_min = dom.lo();
          a.search.window_max = dom.hi();
        }
      } else {
        const double lo =
            out.windows.early[static_cast<std::size_t>(site.aggressor_net)] -
            vic_late;
        const double hi =
            out.windows.late[static_cast<std::size_t>(site.aggressor_net)] -
            vic_late;
        a.search.window_min = peak_ref + lo;
        a.search.window_max = peak_ref + hi;
      }
      const DelayNoiseResult r = analyze_delay_noise(eng, a);
      site_extra[i] = std::max(r.delay_noise(), 0.0);
    });

    double max_change = 0.0;
    std::vector<double> next = out.extra_delay;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      const std::size_t vi = static_cast<std::size_t>(sites[i].victim_net);
      max_change =
          std::max(max_change, std::abs(site_extra[i] - out.extra_delay[vi]));
      next[vi] = site_extra[i];
    }
    out.extra_delay = std::move(next);
    out.max_extra_history.push_back(
        out.extra_delay.empty()
            ? 0.0
            : *std::max_element(out.extra_delay.begin(), out.extra_delay.end()));
    g_max_change.set(max_change);  // Per-pass convergence progress.
    if (max_change < opts.tol) {
      out.converged = true;
      break;
    }
  }
  out.windows = graph.compute_windows(out.extra_delay);
  return out;
}

}  // namespace dn
