#include "mor/prima.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/deadline.hpp"
#include "util/fault_injection.hpp"
#include "util/trace.hpp"

namespace dn {

namespace {

/// Extracts column j of m.
Vector column(const Matrix& m, std::size_t j) {
  Vector v(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) v[i] = m(i, j);
  return v;
}

/// Builds a matrix from column vectors.
Matrix from_columns(const std::vector<Vector>& cols, std::size_t n) {
  Matrix m(n, cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j)
    for (std::size_t i = 0; i < n; ++i) m(i, j) = cols[j][i];
  return m;
}

/// Dense A * V computed one sparse matvec per basis column.
Matrix sparse_times_dense(const SparseMatrix& a, const Matrix& v) {
  Matrix out(a.rows(), v.cols());
  Vector col(v.rows()), res(a.rows());
  for (std::size_t j = 0; j < v.cols(); ++j) {
    for (std::size_t i = 0; i < v.rows(); ++i) col[i] = v(i, j);
    a.matvec(col, res);
    for (std::size_t i = 0; i < a.rows(); ++i) out(i, j) = res[i];
  }
  return out;
}

}  // namespace

SparseDescriptorSystem descriptor_from_mna(const MnaSystem& mna, Matrix B,
                                           Matrix L) {
  if (B.rows() != mna.dim() || L.rows() != mna.dim())
    throw std::invalid_argument("descriptor_from_mna: B/L row mismatch");
  return SparseDescriptorSystem{mna.Gs(), mna.Cs(), std::move(B),
                                std::move(L)};
}

ReducedModel prima(const SparseDescriptorSystem& full, int order,
                   const SolverOptions& solver) {
  static obs::Counter& c_reductions =
      obs::metrics().counter("prima.reductions");
  static obs::Histogram& h_seconds =
      obs::metrics().histogram("stage.reduce.seconds");
  obs::StageScope stage("mor.prima", "reduce", h_seconds);
  c_reductions.add();
  const std::size_t n = full.G.rows();
  if (full.G.cols() != n || full.C.rows() != n || full.C.cols() != n ||
      full.B.rows() != n || full.L.rows() != n)
    throw std::invalid_argument("prima: inconsistent system shapes");
  if (order < 1) throw std::invalid_argument("prima: order must be >= 1");

  // Chaos probe: stands in for Krylov breakdown / singular G. Thrown up
  // front so injected and real breakdowns exercise the same mor rung.
  if (fault::should_fail(fault::Site::kFactor))
    throw std::runtime_error("injected fault: prima breakdown");

  auto g_lu = SystemSolver::make(full.G, solver);
  g_lu.status().throw_if_error();
  const std::size_t p = full.B.cols();

  // Krylov basis columns, orthonormalized by modified Gram-Schmidt.
  std::vector<Vector> basis;
  constexpr double kDeflationTol = 1e-10;
  auto orthonormalize_and_add = [&](Vector v) {
    const double norm_in = norm2(v);
    if (norm_in == 0.0) return false;
    for (const auto& q : basis) {
      const double h = dot(q, v);
      axpy(-h, q, v);
    }
    // Re-orthogonalize once for numerical safety.
    for (const auto& q : basis) {
      const double h = dot(q, v);
      axpy(-h, q, v);
    }
    const double nrm = norm2(v);
    if (nrm < kDeflationTol * norm_in || nrm == 0.0) return false;  // Deflated.
    scale(v, 1.0 / nrm);
    basis.push_back(std::move(v));
    return true;
  };

  // Starting block: R = G^{-1} B — the whole block solved against one
  // factorization (per-column arithmetic identical to one-at-a-time
  // solves, so the basis is unchanged).
  std::vector<Vector> block;
  {
    Vector cols(n * p);
    for (std::size_t j = 0; j < p; ++j) {
      const Vector c = column(full.B, j);
      std::copy(c.begin(), c.end(), cols.begin() + static_cast<std::ptrdiff_t>(j * n));
    }
    g_lu->solve_batch(cols, p);
    for (std::size_t j = 0; j < p; ++j) {
      Vector r(cols.begin() + static_cast<std::ptrdiff_t>(j * n),
               cols.begin() + static_cast<std::ptrdiff_t>((j + 1) * n));
      if (orthonormalize_and_add(std::move(r))) block.push_back(basis.back());
      if (static_cast<int>(basis.size()) >= order) break;
    }
  }

  // Arnoldi blocks: W = G^{-1} C * (previous block). The next block's
  // solves depend only on the previous block, so each round is one
  // batched multi-RHS solve followed by sequential orthonormalization.
  while (static_cast<int>(basis.size()) < order && !block.empty()) {
    deadline_checkpoint("prima");
    const std::size_t bk = block.size();
    Vector cols(n * bk);
    for (std::size_t j = 0; j < bk; ++j) {
      const Vector c = full.C * block[j];
      std::copy(c.begin(), c.end(), cols.begin() + static_cast<std::ptrdiff_t>(j * n));
    }
    g_lu->solve_batch(cols, bk);
    std::vector<Vector> next;
    for (std::size_t j = 0; j < bk; ++j) {
      if (static_cast<int>(basis.size()) >= order) break;
      Vector w(cols.begin() + static_cast<std::ptrdiff_t>(j * n),
               cols.begin() + static_cast<std::ptrdiff_t>((j + 1) * n));
      if (orthonormalize_and_add(std::move(w))) next.push_back(basis.back());
    }
    if (next.empty()) break;  // Krylov space exhausted.
    block = std::move(next);
  }

  if (basis.empty()) throw std::runtime_error("prima: empty projection basis");

  ReducedModel rm;
  rm.V = from_columns(basis, n);
  const Matrix vt = rm.V.transposed();
  rm.sys.G = vt * sparse_times_dense(full.G, rm.V);
  rm.sys.C = vt * sparse_times_dense(full.C, rm.V);
  rm.sys.B = vt * full.B;
  rm.sys.L = vt * full.L;
  return rm;
}

ReducedModel prima(const DescriptorSystem& full, int order) {
  return prima(SparseDescriptorSystem{SparseMatrix::from_dense(full.G),
                                      SparseMatrix::from_dense(full.C),
                                      full.B, full.L},
               order);
}

std::vector<Pwl> simulate_descriptor(const SparseDescriptorSystem& sys,
                                     const std::vector<Pwl>& u,
                                     const TransientSpec& spec,
                                     const SolverOptions& solver) {
  const std::size_t n = sys.G.rows();
  const std::size_t p = sys.B.cols();
  const std::size_t q = sys.L.cols();
  if (sys.G.cols() != n || sys.C.rows() != n || sys.C.cols() != n ||
      sys.B.rows() != n || sys.L.rows() != n)
    throw std::invalid_argument("simulate_descriptor: inconsistent shapes");
  if (u.size() != p)
    throw std::invalid_argument("simulate_descriptor: wrong input count");
  const StatusOr<int> steps_or = spec.num_steps();
  if (!steps_or.ok()) raise(steps_or.status());
  const int steps = *steps_or;
  static obs::Counter& c_steps =
      obs::metrics().counter("sim.descriptor.steps");
  c_steps.add(static_cast<std::uint64_t>(steps));

  auto input_at = [&](double t) {
    Vector uu(p);
    for (std::size_t j = 0; j < p; ++j) uu[j] = u[j].at(t);
    return sys.B * uu;
  };

  // DC initial condition: G x0 = B u(0).
  auto g_lu = SystemSolver::make(sys.G, solver);
  g_lu.status().throw_if_error();
  Vector x = g_lu->solve(input_at(spec.t_start));

  const SparseMatrix a_lhs =
      SparseMatrix::combine(1.0 / spec.dt, sys.C, 0.5, sys.G);
  const SparseMatrix a_rhs =
      SparseMatrix::combine(1.0 / spec.dt, sys.C, -0.5, sys.G);
  auto lu = SystemSolver::make(a_lhs, solver);
  lu.status().throw_if_error();

  std::vector<double> time(static_cast<std::size_t>(steps) + 1);
  for (int k = 0; k <= steps; ++k)
    time[static_cast<std::size_t>(k)] = spec.t_start + spec.dt * k;
  std::vector<std::vector<double>> ys(q, std::vector<double>(time.size()));

  const Matrix lt = sys.L.transposed();
  auto record = [&](std::size_t k) {
    const Vector y = lt * x;
    for (std::size_t j = 0; j < q; ++j) ys[j][k] = y[j];
  };
  record(0);

  Vector b0 = input_at(spec.t_start);
  Vector rhs(n, 0.0);
  for (int k = 1; k <= steps; ++k) {
    deadline_checkpoint("simulate_descriptor");
    Vector b1 = input_at(spec.t_start + spec.dt * k);
    a_rhs.matvec(x, rhs);
    for (std::size_t i = 0; i < n; ++i) rhs[i] += 0.5 * (b0[i] + b1[i]);
    lu->solve_in_place(rhs);
    std::swap(x, rhs);
    b0 = std::move(b1);
    record(static_cast<std::size_t>(k));
  }

  std::vector<Pwl> out;
  out.reserve(q);
  for (std::size_t j = 0; j < q; ++j) out.emplace_back(time, std::move(ys[j]));
  return out;
}

std::vector<Pwl> simulate_descriptor(const DescriptorSystem& sys,
                                     const std::vector<Pwl>& u,
                                     const TransientSpec& spec) {
  return simulate_descriptor(
      SparseDescriptorSystem{SparseMatrix::from_dense(sys.G),
                             SparseMatrix::from_dense(sys.C), sys.B, sys.L},
      u, spec);
}

}  // namespace dn
