// TICER-style realizable RC reduction (Sheehan's "TICER: Realizable
// reduction of extracted RC circuits").
//
// Where PRIMA (mor/prima.*) produces an abstract reduced-order model, node
// elimination keeps the result a plain RC NETWORK: a "quick" internal node
// n (time constant C_n / G_n far below the timescale of interest) is
// removed and its neighbors reconnected with
//     G_ij += g_in * g_jn / G_n            (exact DC / first moment)
//     C_ij-to-ground redistribution  C_j += C_n * g_jn / G_n
// This matters to the flow because extracted victim nets carry many tiny
// segment nodes that only slow the transient solves; eliminating them
// preserves Elmore delays exactly and waveforms to first order.
#pragma once

#include "rcnet/net.hpp"

namespace dn {

struct TicerOptions {
  /// Nodes with time constant below this are eliminated [s].
  double tau_max = 1e-12;
  /// Never eliminate more than this fraction of internal nodes (safety).
  double max_elimination_fraction = 0.95;
};

struct TicerResult {
  RcTree reduced;
  int eliminated = 0;
  std::vector<int> node_map;  // Original local node -> reduced local node
                              // (-1 if eliminated).
};

/// Reduces `tree`, never eliminating the root (0), the sink, or any node
/// listed in `keep` (e.g. coupling-cap attachment points).
TicerResult ticer_reduce(const RcTree& tree, const std::vector<int>& keep = {},
                         const TicerOptions& opts = {});

/// Reduces every net of a coupled net (victim and aggressors), protecting
/// all coupling-cap attachment points, and remaps the couplings onto the
/// reduced node numbering. Throws when any per-net reduction fails; the
/// superposition engine's mor_to_unreduced rung catches that and analyzes
/// the original net instead.
CoupledNet reduce_coupled_net(const CoupledNet& net,
                              const TicerOptions& opts = {});

}  // namespace dn
