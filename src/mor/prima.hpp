// PRIMA: passive reduced-order interconnect macromodeling [2].
//
// The superposition flow re-simulates the same coupled RC network once per
// driver; the paper notes the key enabler is that "a reduced-order model of
// the network needs to be created only once with methods such as PRIMA and
// is then reused in all different driver simulations". This module
// implements the block-Arnoldi congruence projection on the descriptor
// system  G x + C x' = B u,  y = L^T x,  which preserves passivity for RC
// networks (V^T G V and V^T C V stay symmetric nonnegative).
//
// The Krylov iteration runs on sparse G/C (SparseDescriptorSystem) so
// reducing a large SPEF net never densifies the input; the dense
// DescriptorSystem entry points remain as thin conversions for reduced /
// small systems. B and L stay dense: ports and outputs are few.
#pragma once

#include <vector>

#include "circuit/mna.hpp"
#include "matrix/dense.hpp"
#include "matrix/solver.hpp"
#include "matrix/sparse.hpp"
#include "sim/transient.hpp"
#include "waveform/pwl.hpp"

namespace dn {

/// Linear descriptor system in input/output form (dense storage).
struct DescriptorSystem {
  Matrix G;  // n x n conductance.
  Matrix C;  // n x n capacitance.
  Matrix B;  // n x p input incidence (u = port sources).
  Matrix L;  // n x q output incidence (y = L^T x).
};

/// Same system with the large n x n blocks kept sparse.
struct SparseDescriptorSystem {
  SparseMatrix G;
  SparseMatrix C;
  Matrix B;
  Matrix L;
};

/// Sparse descriptor view over an assembled MNA system (no densification).
SparseDescriptorSystem descriptor_from_mna(const MnaSystem& mna, Matrix B,
                                           Matrix L);

struct ReducedModel {
  DescriptorSystem sys;  // Reduced matrices (k x k, k x p, k x q).
  Matrix V;              // n x k projection basis (orthonormal columns).
  int order() const { return static_cast<int>(sys.G.rows()); }
};

/// Reduces `full` to (at most) `order` states via block Arnoldi on
/// A = G^{-1} C with starting block R = G^{-1} B and modified Gram-Schmidt
/// orthogonalization. Deflation may return fewer states than requested.
/// `solver` picks the backend for the G factorization.
ReducedModel prima(const SparseDescriptorSystem& full, int order,
                   const SolverOptions& solver = {});
ReducedModel prima(const DescriptorSystem& full, int order);

/// Trapezoidal transient of a descriptor system with inputs u(t).
/// Initial state is the DC solution at spec.t_start. Returns one waveform
/// per output column of L.
std::vector<Pwl> simulate_descriptor(const SparseDescriptorSystem& sys,
                                     const std::vector<Pwl>& u,
                                     const TransientSpec& spec,
                                     const SolverOptions& solver = {});
std::vector<Pwl> simulate_descriptor(const DescriptorSystem& sys,
                                     const std::vector<Pwl>& u,
                                     const TransientSpec& spec);

}  // namespace dn
