#include "mor/reduction_cache.hpp"

#include "rcnet/net_hash.hpp"
#include "util/deadline.hpp"
#include "util/metrics.hpp"

namespace dn {

namespace {

std::uint64_t options_hash(const TicerOptions& opts) {
  HashStream h;
  h.f64(opts.tau_max);
  h.f64(opts.max_elimination_fraction);
  return h.digest();
}

}  // namespace

ReductionCache::Entry* ReductionCache::entry_for(const Key& key) {
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  const auto [it, inserted] =
      entries_.try_emplace(key, std::make_unique<Entry>());
  (void)inserted;
  return it->second.get();
}

StatusOr<std::shared_ptr<const CoupledNet>> ReductionCache::try_reduce(
    const CoupledNet& net, const TicerOptions& opts) {
  static obs::Counter& c_hits = obs::metrics().counter("reduction_cache.hits");
  static obs::Counter& c_misses =
      obs::metrics().counter("reduction_cache.misses");

  const Key key{content_hash(net), options_hash(opts)};
  Entry* entry = entry_for(key);

  bool reduced_here = false;
  std::call_once(entry->once, [&] {
    reduced_here = true;
    // Shared state: the fill must be a function of the key alone, so it
    // is shielded from the calling net's deadline (one net's expired
    // budget must not poison the entry for every later net) and any
    // failure is caught into the entry.
    ScopedDeadline no_deadline{Deadline{}};
    try {
      entry->reduced =
          std::make_shared<const CoupledNet>(reduce_coupled_net(net, opts));
    } catch (const std::exception& e) {
      entry->status = status_from_exception(e);
    }
  });
  if (reduced_here) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    c_misses.add();
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    c_hits.add();
  }
  if (entry->reduced) return entry->reduced;
  return entry->status;
}

std::size_t ReductionCache::size() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return entries_.size();
}

}  // namespace dn
