#include "mor/reduction_cache.hpp"

#include <sstream>

#include "rcnet/net_hash.hpp"
#include "rcnet/net_io.hpp"
#include "util/deadline.hpp"
#include "util/durable_io.hpp"
#include "util/metrics.hpp"

namespace dn {

namespace {

std::uint64_t options_hash(const TicerOptions& opts) {
  HashStream h;
  h.f64(opts.tau_max);
  h.f64(opts.max_elimination_fraction);
  return h.digest();
}

}  // namespace

ReductionCache::Entry* ReductionCache::entry_for(const Key& key) {
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  const auto [it, inserted] =
      entries_.try_emplace(key, std::make_unique<Entry>());
  (void)inserted;
  return it->second.get();
}

StatusOr<std::shared_ptr<const CoupledNet>> ReductionCache::try_reduce(
    const CoupledNet& net, const TicerOptions& opts) {
  static obs::Counter& c_hits = obs::metrics().counter("reduction_cache.hits");
  static obs::Counter& c_misses =
      obs::metrics().counter("reduction_cache.misses");

  const Key key{content_hash(net), options_hash(opts)};
  Entry* entry = entry_for(key);

  bool reduced_here = false;
  std::call_once(entry->once, [&] {
    reduced_here = true;
    // Shared state: the fill must be a function of the key alone, so it
    // is shielded from the calling net's deadline (one net's expired
    // budget must not poison the entry for every later net) and any
    // failure is caught into the entry.
    ScopedDeadline no_deadline{Deadline{}};
    try {
      entry->reduced =
          std::make_shared<const CoupledNet>(reduce_coupled_net(net, opts));
    } catch (const std::exception& e) {
      entry->status = status_from_exception(e);
    }
  });
  if (reduced_here) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    c_misses.add();
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    c_hits.add();
  }
  if (entry->reduced) return entry->reduced;
  return entry->status;
}

std::size_t ReductionCache::size() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return entries_.size();
}

namespace {

constexpr const char* kCacheMagic = "dnoise-reduction-cache";
constexpr int kCacheVersion = 1;

std::uint64_t payload_content_hash(const std::string& payload) {
  HashStream h;
  h.str(payload);
  return h.digest();
}

}  // namespace

Status ReductionCache::save(std::ostream& os) const {
  std::ostringstream payload;
  payload.precision(17);
  std::size_t count = 0;
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    for (const auto& [key, entry] : entries_) {
      if (!entry->reduced) continue;  // In-flight or failed reduction.
      payload << std::hex << key.first << ' ' << key.second << std::dec
              << '\n';
      write_coupled_net(payload, *entry->reduced);
      ++count;
    }
  }
  const std::string bytes = payload.str();
  os << kCacheMagic << ' ' << kCacheVersion << ' ' << count << ' ' << std::hex
     << payload_content_hash(bytes) << std::dec << '\n'
     << bytes;
  if (!os) return Status::Internal("reduction cache: write failed");
  return Status::Ok();
}

Status ReductionCache::save_file(const std::string& path) const {
  std::ostringstream os;
  const Status s = save(os);
  if (!s.ok()) return s;
  return durable::atomic_write_file(path, os.str());
}

StatusOr<std::size_t> ReductionCache::load(std::istream& is) {
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  std::uint64_t stored_hash = 0;
  is >> magic >> version >> count >> std::hex >> stored_hash >> std::dec;
  if (!is || magic != kCacheMagic)
    return Status::InvalidArgument("reduction cache: unrecognized file header");
  if (version != kCacheVersion)
    return Status::InvalidArgument("reduction cache: unsupported version " +
                                   std::to_string(version));
  is.ignore(1);  // The newline ending the header line.

  // Whole-payload content-hash validation before installing anything: a
  // torn write or hand-edited record rejects the file whole instead of
  // half-loading.
  std::ostringstream rest;
  rest << is.rdbuf();
  const std::string payload = rest.str();
  if (payload_content_hash(payload) != stored_hash)
    return Status::InvalidArgument(
        "reduction cache: content hash mismatch (corrupt or truncated file)");

  std::istringstream records(payload);
  std::size_t installed = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Key key;
    if (!(records >> std::hex >> key.first >> key.second >> std::dec))
      return Status::InvalidArgument("reduction cache: malformed entry key");
    StatusOr<CoupledNet> net = read_coupled_net(records);
    if (!net.ok())
      return Status::InvalidArgument("reduction cache: " +
                                     net.status().message());
    Entry* entry = entry_for(key);
    std::call_once(entry->once, [&] {
      entry->reduced = std::make_shared<const CoupledNet>(std::move(*net));
      ++installed;
    });
    // A key already reduced live keeps its live net: shared pointers
    // handed out earlier must stay valid and consistent.
  }
  return installed;
}

StatusOr<std::size_t> ReductionCache::load_file(const std::string& path) {
  StatusOr<std::string> bytes = durable::read_file(path);
  if (!bytes.ok()) return bytes.status();
  std::istringstream is(*bytes);
  return load(is);
}

}  // namespace dn
