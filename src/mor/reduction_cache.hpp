// Process-wide, thread-safe cache of TICER net reductions.
//
// Pre-reduction (SuperpositionOptions::prereduce) re-derives the same
// reduced net every time a structurally identical CoupledNet is analyzed
// — wasteful for a resident server, where the same design is re-analyzed
// after every small edit. This cache keys reductions by the net's CONTENT
// hash (rcnet/net_hash.hpp) plus the reduction options, so:
//   - two structurally identical nets share one reduction,
//   - an edited net hashes differently and never sees a stale reduction,
//   - the cache needs no explicit invalidation — stale entries are simply
//     never looked up again (and the maps stay small: a design edit
//     replaces one key among thousands).
//
// Locking mirrors CharacterizationCache: a shared_mutex guards the map,
// a per-entry once_flag serializes the two threads racing on one NEW key
// while every other key sails through. Failures are cached too, and the
// fill is shielded from the calling net's deadline so a shared entry's
// outcome is a function of the key alone.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "mor/ticer.hpp"
#include "rcnet/net.hpp"
#include "util/status.hpp"

namespace dn {

class ReductionCache {
 public:
  ReductionCache() = default;
  ReductionCache(const ReductionCache&) = delete;
  ReductionCache& operator=(const ReductionCache&) = delete;

  /// The TICER-reduced form of `net`, reducing on first use. The returned
  /// net is shared and immutable; it stays valid for the cache's
  /// lifetime. Thread-safe. A reduction that FAILS is cached as its
  /// Status, so every lookup of that key observes the identical outcome.
  StatusOr<std::shared_ptr<const CoupledNet>> try_reduce(
      const CoupledNet& net, const TicerOptions& opts);

  /// Number of distinct (net content, options) keys reduced so far.
  std::size_t size() const;

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Disk persistence, mirroring CharacterizationCache: save() writes
  /// every SUCCESSFUL reduction (failures are cheap to rediscover) keyed
  /// by (content hash, options hash), preceded by a header carrying an
  /// FNV-1a hash of the payload bytes. load() verifies that hash before
  /// installing anything — a truncated or edited file is rejected whole
  /// as kInvalidArgument — and installs entries through the same
  /// per-entry call_once discipline as live fills, so a key already
  /// reduced live keeps its live net. Returns the number installed.
  /// save_file() replaces atomically (tmp + fsync + rename).
  Status save(std::ostream& os) const;
  Status save_file(const std::string& path) const;
  StatusOr<std::size_t> load(std::istream& is);
  StatusOr<std::size_t> load_file(const std::string& path);

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // (net, options).

  struct Entry {
    std::once_flag once;
    std::shared_ptr<const CoupledNet> reduced;  // Set inside call_once.
    Status status;  // Failure cause when the fill failed (reduced == null).
  };

  Entry* entry_for(const Key& key);

  mutable std::shared_mutex mu_;
  std::map<Key, std::unique_ptr<Entry>> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace dn
