#include "mor/ticer.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/deadline.hpp"
#include "util/fault_injection.hpp"
#include "util/trace.hpp"

namespace dn {

TicerResult ticer_reduce(const RcTree& tree, const std::vector<int>& keep,
                         const TicerOptions& opts) {
  static obs::Counter& c_elim =
      obs::metrics().counter("ticer.nodes_eliminated");
  static obs::Histogram& h_seconds =
      obs::metrics().histogram("stage.reduce.seconds");
  obs::StageScope stage("mor.ticer", "reduce", h_seconds);
  // Chaos probe: stands in for an elimination pass producing an invalid
  // reduced net (validate() failure) so the mor rung can be exercised.
  if (fault::should_fail(fault::Site::kFactor))
    throw std::runtime_error("injected fault: ticer breakdown");
  tree.validate();
  const int n = tree.num_nodes;

  std::vector<char> protected_(static_cast<std::size_t>(n), 0);
  protected_[0] = 1;
  protected_[static_cast<std::size_t>(tree.sink)] = 1;
  for (int k : keep) {
    if (k < 0 || k >= n) throw std::invalid_argument("ticer: bad keep node");
    protected_[static_cast<std::size_t>(k)] = 1;
  }

  // Mutable element lists; alive flags per node.
  struct Res {
    int a, b;
    double r;
    bool alive = true;
  };
  std::vector<Res> res;
  res.reserve(tree.res.size());
  for (const auto& r : tree.res) res.push_back({r.a, r.b, r.r});
  std::vector<double> cap(static_cast<std::size_t>(n), 0.0);
  for (const auto& c : tree.caps) cap[static_cast<std::size_t>(c.node)] += c.c;
  std::vector<char> alive(static_cast<std::size_t>(n), 1);

  // Adjacency: alive incident resistor indices per node, maintained under
  // elimination so each candidate check is O(1) instead of an O(m) rescan
  // of the whole resistor list per node per pass.
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < res.size(); ++i) {
    adj[static_cast<std::size_t>(res[i].a)].push_back(static_cast<int>(i));
    if (res[i].b != res[i].a)
      adj[static_cast<std::size_t>(res[i].b)].push_back(static_cast<int>(i));
  }

  const int internal = std::max(n - 2, 1);
  const int max_elim =
      static_cast<int>(opts.max_elimination_fraction * internal);
  int eliminated = 0;

  bool progress = true;
  while (progress && eliminated < max_elim) {
    deadline_checkpoint("ticer_reduce");
    progress = false;
    for (int node = 1; node < n; ++node) {
      const std::size_t ni = static_cast<std::size_t>(node);
      if (!alive[ni] || protected_[ni]) continue;
      const auto& inc = adj[ni];
      if (inc.size() != 2) continue;  // Only series nodes keep tree-ness.
      Res& e1 = res[static_cast<std::size_t>(inc[0])];
      Res& e2 = res[static_cast<std::size_t>(inc[1])];
      const double g = 1.0 / e1.r + 1.0 / e2.r;
      const double tau = cap[ni] / g;
      if (tau >= opts.tau_max) continue;

      // Neighbors on the far side of each incident resistor.
      const int u = (e1.a == node) ? e1.b : e1.a;
      const int v = (e2.a == node) ? e2.b : e2.a;
      if (u == v) continue;  // Would create a parallel pair; skip.

      // Redistribute the node's cap by conductance share, then merge the
      // resistors in series.
      const double share_u = (1.0 / e1.r) / g;
      cap[static_cast<std::size_t>(u)] += cap[ni] * share_u;
      cap[static_cast<std::size_t>(v)] += cap[ni] * (1.0 - share_u);
      cap[ni] = 0.0;
      e1.a = u;
      e1.b = v;
      e1.r = e1.r + e2.r;
      e2.alive = false;
      // Maintain adjacency: e2 dies (drop it at v), the merged e1 now
      // reaches v (it is already listed at u), and the node goes away.
      auto& av = adj[static_cast<std::size_t>(v)];
      av.erase(std::find(av.begin(), av.end(), inc[1]));
      av.push_back(inc[0]);
      adj[ni].clear();
      alive[ni] = 0;
      ++eliminated;
      progress = true;
      if (eliminated >= max_elim) break;
    }
  }

  // Compact into a fresh RcTree.
  TicerResult out;
  out.eliminated = eliminated;
  c_elim.add(static_cast<std::uint64_t>(eliminated));
  out.node_map.assign(static_cast<std::size_t>(n), -1);
  int next = 0;
  for (int node = 0; node < n; ++node)
    if (alive[static_cast<std::size_t>(node)])
      out.node_map[static_cast<std::size_t>(node)] = next++;
  out.reduced.num_nodes = next;
  out.reduced.sink = out.node_map[static_cast<std::size_t>(tree.sink)];
  for (const auto& r : res)
    if (r.alive)
      out.reduced.res.push_back({out.node_map[static_cast<std::size_t>(r.a)],
                                 out.node_map[static_cast<std::size_t>(r.b)],
                                 r.r});
  for (int node = 0; node < n; ++node)
    if (alive[static_cast<std::size_t>(node)] &&
        cap[static_cast<std::size_t>(node)] > 0)
      out.reduced.caps.push_back({out.node_map[static_cast<std::size_t>(node)],
                                  cap[static_cast<std::size_t>(node)]});
  out.reduced.validate();
  return out;
}

CoupledNet reduce_coupled_net(const CoupledNet& net, const TicerOptions& opts) {
  CoupledNet out = net;

  // Coupling attachment points must survive reduction on both sides.
  std::vector<int> victim_keep;
  std::vector<std::vector<int>> agg_keep(net.aggressors.size());
  for (const auto& cc : net.couplings) {
    victim_keep.push_back(cc.victim_node);
    agg_keep[static_cast<std::size_t>(cc.aggressor)].push_back(
        cc.aggressor_node);
  }

  const TicerResult vr = ticer_reduce(net.victim.net, victim_keep, opts);
  out.victim.net = vr.reduced;
  std::vector<TicerResult> ars;
  ars.reserve(net.aggressors.size());
  for (std::size_t j = 0; j < net.aggressors.size(); ++j) {
    ars.push_back(ticer_reduce(net.aggressors[j].net, agg_keep[j], opts));
    out.aggressors[j].net = ars.back().reduced;
  }

  for (auto& cc : out.couplings) {
    cc.victim_node = vr.node_map[static_cast<std::size_t>(cc.victim_node)];
    cc.aggressor_node =
        ars[static_cast<std::size_t>(cc.aggressor)]
            .node_map[static_cast<std::size_t>(cc.aggressor_node)];
    if (cc.victim_node < 0 || cc.aggressor_node < 0)
      throw std::runtime_error(
          "reduce_coupled_net: coupling node eliminated despite keep list");
  }
  out.validate();
  return out;
}

}  // namespace dn
