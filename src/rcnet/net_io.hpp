// Text serialization of the coupled-net data model.
//
// The durable caches (mor/reduction_cache) and the server's snapshot
// machinery need to persist CoupledNets exactly: every field that feeds
// the analysis, doubles at %.17g so a write/read round trip is
// bit-identical. The format is a line-oriented text record mirroring the
// AlignmentTable file idiom — versioned header per record, explicit
// element counts, no lookahead.
#pragma once

#include <iosfwd>

#include "rcnet/net.hpp"
#include "util/status.hpp"

namespace dn {

/// Writes one full-fidelity CoupledNet record.
void write_coupled_net(std::ostream& os, const CoupledNet& net);

/// Reads one record written by write_coupled_net. Malformed or truncated
/// input is kInvalidArgument; element counts are bounds-checked before
/// any allocation is sized from them.
StatusOr<CoupledNet> read_coupled_net(std::istream& is);

/// Gate-parameter record shared by the net record (full MosfetParams
/// fidelity, unlike the alignment-table header which persists only the
/// fields its interpolation depends on).
void write_gate_params(std::ostream& os, const GateParams& g);
StatusOr<GateParams> read_gate_params(std::istream& is);

}  // namespace dn
