// SPEF-subset reader/writer for coupled nets.
//
// A pragmatic subset of IEEE 1481 SPEF sufficient to round-trip a
// CoupledNet: one *D_NET block per net (victim first), *CONN with the
// driver/receiver annotations this library needs, *CAP with grounded and
// coupling entries, *RES with the wire segments. Units are fixed
// (*T_UNIT 1 PS, *C_UNIT 1 FF, *R_UNIT 1 OHM) and node names are
// "<net>:<index>" with index 0 the driver output.
//
// Grammar (one token stream; '//' comments allowed):
//   *SPEF "dnoise-subset-1"
//   *DESIGN <name>
//   *D_NET <net> *VICTIM|*AGGRESSOR
//   *DRIVER <cell-type> <size> <input-slew-ps> RISE|FALL   // output edge
//   *RECEIVER <cell-type> <size> <load-fF>                 // victim only
//   *SINKLOAD <fF>                                          // aggressor only
//   *SINK <node-index>
//   *CAP  { <net>:<i> <fF>  |  <netA>:<i> <netB>:<j> <fF> } ...
//   *RES  { <net>:<i> <net>:<j> <ohm> } ...
//   *END
#pragma once

#include <iosfwd>
#include <string>

#include "rcnet/net.hpp"
#include "util/status.hpp"

namespace dn {

/// Serializes `net` (victim net named "victim", aggressors "agg<k>").
void write_spef(std::ostream& os, const CoupledNet& net,
                const std::string& design = "dnoise");

/// Parses a dnoise-subset SPEF stream. Malformed input comes back as
/// kInvalidArgument with a context message — never an exception — so a
/// batch run can record the bad deck and keep going.
StatusOr<CoupledNet> try_read_spef(std::istream& is);

/// File variant: kNotFound when the file cannot be opened.
StatusOr<CoupledNet> try_read_spef_file(const std::string& path);

void write_spef_file(const std::string& path, const CoupledNet& net,
                     const std::string& design = "dnoise");

}  // namespace dn
