// Synthetic coupled-net workload generation.
//
// Stand-in for the paper's "300 nets from a high performance
// microprocessor block": seeded random coupled RC nets with realistic
// parameter spreads (victim/aggressor drive strengths, net sizes, coupling
// ratios, slews, receiver loads). Fully deterministic given the seed.
#pragma once

#include "rcnet/net.hpp"
#include "util/rng.hpp"

namespace dn {

struct RandomNetConfig {
  int min_aggressors = 1;
  int max_aggressors = 3;
  int min_segments = 3;
  int max_segments = 10;
  double r_total_min = 200.0;     // Victim/aggressor wire resistance [Ohm].
  double r_total_max = 2500.0;
  double c_total_min = 20e-15;    // Wire ground capacitance [F].
  double c_total_max = 120e-15;
  double coupling_ratio_min = 0.4;  // Total coupling / victim ground cap.
  double coupling_ratio_max = 1.5;
  double slew_min = 60e-12;       // Driver input slews [s].
  double slew_max = 300e-12;
  double rcv_load_min = 3e-15;    // Receiver output load [F].
  double rcv_load_max = 60e-15;
  double vdd = 1.8;
  bool randomize_victim_direction = true;
  /// Drive-strength pools sampled uniformly. Delay noise is a weak-victim
  /// phenomenon; populations emphasizing small victim drivers and strong
  /// aggressors match the nets a noise tool flags in practice.
  std::vector<double> victim_sizes{1.0, 1.0, 2.0, 2.0, 4.0};
  std::vector<double> aggressor_sizes{2.0, 4.0, 4.0, 8.0};
  std::vector<double> receiver_sizes{1.0, 2.0, 4.0};
};

/// One random coupled net. Aggressors always switch OPPOSITE the victim
/// (the delay-increasing case the paper analyzes).
CoupledNet random_coupled_net(Rng& rng, const RandomNetConfig& cfg = {});

/// The fixed two-line example used by the waveform figures (2, 5): a weak
/// victim driver on a resistive line, one strong fast aggressor coupled
/// along most of its length.
CoupledNet example_coupled_net(int n_aggressors = 1);

}  // namespace dn
