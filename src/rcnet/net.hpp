// Coupled-interconnect data model.
//
// An RcTree is one net's parasitics in local node numbering (node 0 is the
// driver output / root). A CoupledNet bundles the victim net, its receiver,
// its aggressor nets, and the victim<->aggressor coupling capacitances —
// exactly the structure of the paper's Figure 1(a). Builders in core/
// instantiate these into concrete Circuits with the driver model required
// by each step of the superposition flow.
#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "devices/gate.hpp"

namespace dn {

struct NetRes {
  int a = 0, b = 0;  // Local node indices.
  double r = 0.0;    // [Ohm]
};

struct NetCap {
  int node = 0;      // Local node index.
  double c = 0.0;    // Grounded capacitance [F].
};

struct RcTree {
  int num_nodes = 1;            // Local nodes 0..num_nodes-1; 0 = root.
  std::vector<NetRes> res;
  std::vector<NetCap> caps;
  int sink = 0;                 // Receiver-input node.

  /// Sum of all grounded capacitance in the tree.
  double total_cap() const;

  /// Validates indices and connectivity from the root; throws on error.
  void validate() const;

  /// Adds the tree's R/C elements to `ckt`, creating fresh nodes named
  /// "<prefix><local index>". Returns local->circuit node mapping.
  std::vector<NodeId> instantiate(Circuit& ckt, const std::string& prefix) const;
};

/// A victim<->aggressor coupling capacitor.
struct Coupling {
  int aggressor = 0;      // Index into CoupledNet::aggressors.
  int aggressor_node = 0; // Local node on that aggressor's tree.
  int victim_node = 0;    // Local node on the victim tree.
  double c = 0.0;         // [F]
};

/// One aggressor: its net, driver, and input stimulus shape. The input is
/// a full-swing ramp whose *timing* is decided by the alignment search; the
/// shape (slew) is fixed per net.
struct AggressorDesc {
  RcTree net;
  GateParams driver;
  double input_slew = 100e-12;  // 0-100% input ramp time [s].
  bool output_rising = true;    // Direction of the aggressor OUTPUT transition.
  double sink_load = 2e-15;     // Receiver pin cap at the aggressor sink [F].
  /// STA switching window for this aggressor's INPUT pin [s], absolute in
  /// the engine time frame: the input ramp may only start inside
  /// [window_early, window_late]. Unconstrained when window_late <
  /// window_early (the default) — i.e. the aggressor may switch any time,
  /// the classic pre-window analysis.
  double window_early = 1.0;
  double window_late = 0.0;
  bool has_window() const { return window_late >= window_early; }
};

struct VictimDesc {
  RcTree net;
  GateParams driver;
  double input_slew = 100e-12;
  bool output_rising = true;    // Direction of the victim OUTPUT transition.
  GateParams receiver;          // Receiver gate at net.sink.
  double receiver_load = 20e-15;  // Lumped cap at the receiver output [F].
};

/// Pairwise logic-correlation (mutual exclusion) constraint: aggressors
/// `a` and `b` can never switch in the same clock cycle (FRAME-style
/// logical correlation). The alignment pruning keeps whichever of the two
/// couples more charge into the victim and drops the other.
struct AggressorExclusion {
  int a = 0, b = 0;  // Indices into CoupledNet::aggressors.
};

struct CoupledNet {
  VictimDesc victim;
  std::vector<AggressorDesc> aggressors;
  std::vector<Coupling> couplings;
  std::vector<AggressorExclusion> exclusions;

  void validate() const;

  /// Total coupling capacitance attached to the victim.
  double total_coupling_cap() const;

  /// Grounded-equivalent load of the victim net as seen by its driver:
  /// tree caps + coupling caps (grounded) + receiver input pin cap.
  double victim_total_load() const;
};

// ---------------------------------------------------------------------------
// Topology builders (the synthetic stand-ins for extracted layout data).
// ---------------------------------------------------------------------------

/// Uniform RC line: `segments` sections of (r_total/segments,
/// c_total/segments), sink at the far end.
RcTree make_line(int segments, double r_total, double c_total);

/// Balanced binary RC tree of given depth; sink at one leaf.
RcTree make_tree(int depth, double r_seg, double c_seg);

/// Parallel-bus coupled net: `lanes` wires of `segments` sections routed
/// side by side; the middle lane is the victim, every other lane an
/// aggressor switching against it. Adjacent lanes couple node-by-node with
/// `cc_adjacent` total per pair; non-adjacent pairs are ignored (second-
/// neighbor coupling is an order of magnitude down in real stacks).
CoupledNet make_bus(int lanes, int segments, double r_total, double c_total,
                    double cc_adjacent);

/// Victim driver input ramp for a desc (falling input for an inverting
/// driver with rising output, etc.), starting at t_start.
Pwl driver_input_ramp(const GateParams& driver, double input_slew,
                      bool output_rising, double t_start);

}  // namespace dn
