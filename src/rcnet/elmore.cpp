#include "rcnet/elmore.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dn {

namespace {

struct TreeOrder {
  std::vector<int> parent;        // Parent node per node (-1 for root).
  std::vector<double> r_up;       // Resistance to the parent.
  std::vector<int> order;         // Topological (root-first) order.
};

TreeOrder order_tree(const RcTree& tree) {
  tree.validate();
  const std::size_t n = static_cast<std::size_t>(tree.num_nodes);
  std::vector<std::vector<std::pair<int, double>>> adj(n);
  for (const auto& r : tree.res) {
    adj[static_cast<std::size_t>(r.a)].emplace_back(r.b, r.r);
    adj[static_cast<std::size_t>(r.b)].emplace_back(r.a, r.r);
  }
  TreeOrder to;
  to.parent.assign(n, -2);
  to.r_up.assign(n, 0.0);
  to.order.reserve(n);
  std::vector<int> stack{0};
  to.parent[0] = -1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    to.order.push_back(u);
    for (const auto& [v, r] : adj[static_cast<std::size_t>(u)]) {
      if (to.parent[static_cast<std::size_t>(v)] != -2) {
        if (v != to.parent[static_cast<std::size_t>(u)])
          throw std::invalid_argument("tree_moments: resistor loop in tree");
        continue;
      }
      to.parent[static_cast<std::size_t>(v)] = u;
      to.r_up[static_cast<std::size_t>(v)] = r;
      stack.push_back(v);
    }
  }
  if (to.order.size() != n)
    throw std::invalid_argument("tree_moments: disconnected tree");
  return to;
}

}  // namespace

TreeMoments tree_moments(const RcTree& tree,
                         const std::vector<double>& extra_cap) {
  const std::size_t n = static_cast<std::size_t>(tree.num_nodes);
  if (!extra_cap.empty() && extra_cap.size() != n)
    throw std::invalid_argument("tree_moments: extra_cap size mismatch");
  const TreeOrder to = order_tree(tree);

  std::vector<double> cap(n, 0.0);
  for (const auto& c : tree.caps) cap[static_cast<std::size_t>(c.node)] += c.c;
  if (!extra_cap.empty())
    for (std::size_t i = 0; i < n; ++i) cap[i] += extra_cap[i];

  // Upward pass: subtree capacitance.
  std::vector<double> cdown = cap;
  for (auto it = to.order.rbegin(); it != to.order.rend(); ++it) {
    const int u = *it;
    const int p = to.parent[static_cast<std::size_t>(u)];
    if (p >= 0) cdown[static_cast<std::size_t>(p)] +=
        cdown[static_cast<std::size_t>(u)];
  }
  // Downward pass: Elmore delay.
  std::vector<double> elmore(n, 0.0);
  for (const int u : to.order) {
    const int p = to.parent[static_cast<std::size_t>(u)];
    if (p >= 0)
      elmore[static_cast<std::size_t>(u)] =
          elmore[static_cast<std::size_t>(p)] +
          to.r_up[static_cast<std::size_t>(u)] *
              cdown[static_cast<std::size_t>(u)];
  }
  // Second moment: subtree sum of C_k * elmore_k upward, then accumulate
  // resistance-weighted downward (Rubinstein-Penfield style recurrence).
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) b[i] = cap[i] * elmore[i];
  for (auto it = to.order.rbegin(); it != to.order.rend(); ++it) {
    const int u = *it;
    const int p = to.parent[static_cast<std::size_t>(u)];
    if (p >= 0) b[static_cast<std::size_t>(p)] += b[static_cast<std::size_t>(u)];
  }
  std::vector<double> t2(n, 0.0);
  for (const int u : to.order) {
    const int p = to.parent[static_cast<std::size_t>(u)];
    if (p >= 0)
      t2[static_cast<std::size_t>(u)] =
          t2[static_cast<std::size_t>(p)] +
          to.r_up[static_cast<std::size_t>(u)] * b[static_cast<std::size_t>(u)];
  }

  TreeMoments m;
  m.m1.resize(n);
  m.m2.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.m1[i] = -elmore[i];
    // Second moment of an RC tree: m2(i) = sum_k R_ik C_k Elmore(k) = t2
    // (single-RC check: m2 = R^2 C^2, giving D2M = RC ln2, the exact 50%
    // delay of a single pole).
    m.m2[i] = t2[i];
  }
  return m;
}

double elmore_delay(const RcTree& tree, int node,
                    const std::vector<double>& extra_cap) {
  const TreeMoments m = tree_moments(tree, extra_cap);
  return -m.m1.at(static_cast<std::size_t>(node));
}

double d2m_delay(const RcTree& tree, int node,
                 const std::vector<double>& extra_cap) {
  const TreeMoments m = tree_moments(tree, extra_cap);
  const double m1 = m.m1.at(static_cast<std::size_t>(node));
  const double m2 = m.m2.at(static_cast<std::size_t>(node));
  if (m2 <= 0) return -m1 * std::numbers::ln2;  // Degenerate: fall back.
  return m1 * m1 / std::sqrt(m2) * std::numbers::ln2;
}

}  // namespace dn
