#include "rcnet/spef.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/fault_injection.hpp"
#include "util/trace.hpp"

namespace dn {

namespace {

constexpr double kPs = 1e-12;
constexpr double kFf = 1e-15;

const char* type_token(GateType t) {
  switch (t) {
    case GateType::Inverter: return "INV";
    case GateType::Buffer: return "BUF";
    case GateType::Nand2: return "NAND2";
    case GateType::Nor2: return "NOR2";
  }
  return "INV";
}

GateType parse_type(const std::string& s) {
  if (s == "INV") return GateType::Inverter;
  if (s == "BUF") return GateType::Buffer;
  if (s == "NAND2") return GateType::Nand2;
  if (s == "NOR2") return GateType::Nor2;
  throw std::runtime_error("spef: unknown gate type '" + s + "'");
}

std::string node_ref(const std::string& net, int idx) {
  return net + ":" + std::to_string(idx);
}

void write_net_block(std::ostream& os, const std::string& name,
                     const RcTree& tree,
                     const std::vector<std::string>& coupling_lines = {}) {
  os << "*SINK " << tree.sink << "\n";
  os << "*CAP\n";
  for (const auto& c : tree.caps)
    os << node_ref(name, c.node) << " " << c.c / kFf << "\n";
  for (const auto& line : coupling_lines) os << line << "\n";
  os << "*RES\n";
  for (const auto& r : tree.res)
    os << node_ref(name, r.a) << " " << node_ref(name, r.b) << " " << r.r
       << "\n";
}

}  // namespace

void write_spef(std::ostream& os, const CoupledNet& net,
                const std::string& design) {
  net.validate();
  os.precision(12);  // Values must survive a round trip.
  os << "*SPEF \"dnoise-subset-1\"\n";
  os << "*DESIGN " << design << "\n";
  os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";

  const auto& v = net.victim;
  os << "*D_NET victim *VICTIM\n";
  os << "*DRIVER " << type_token(v.driver.type) << " " << v.driver.size << " "
     << v.input_slew / kPs << " " << (v.output_rising ? "RISE" : "FALL")
     << "\n";
  os << "*RECEIVER " << type_token(v.receiver.type) << " " << v.receiver.size
     << " " << v.receiver_load / kFf << "\n";
  // Victim block carries the coupling caps inside its *CAP section.
  std::vector<std::string> coupling_lines;
  for (const auto& cc : net.couplings) {
    std::ostringstream line;
    line.precision(12);
    line << node_ref("victim", cc.victim_node) << " "
         << node_ref("agg" + std::to_string(cc.aggressor), cc.aggressor_node)
         << " " << cc.c / kFf;
    coupling_lines.push_back(line.str());
  }
  write_net_block(os, "victim", v.net, coupling_lines);
  os << "*END\n\n";

  for (std::size_t k = 0; k < net.aggressors.size(); ++k) {
    const auto& a = net.aggressors[k];
    os << "*D_NET agg" << k << " *AGGRESSOR\n";
    os << "*DRIVER " << type_token(a.driver.type) << " " << a.driver.size
       << " " << a.input_slew / kPs << " "
       << (a.output_rising ? "RISE" : "FALL") << "\n";
    os << "*SINKLOAD " << a.sink_load / kFf << "\n";
    write_net_block(os, "agg" + std::to_string(k), a.net);
    os << "*END\n\n";
  }
}

namespace {

/// OOM guard: a node index names a slot of a dense num_nodes-sized
/// allocation downstream, so one forged "victim:999999999999" token must
/// not turn into gigabytes of zeros. Generous: real extracted nets in
/// this subset stay below a few thousand nodes.
constexpr int kMaxNodeIndex = 1000000;

/// A token plus where it came from, so every parse error names the exact
/// spot ("spef:12:7: ...") instead of making the user bisect the deck.
struct Token {
  std::string text;
  int line = 0;  // 1-based.
  int col = 0;   // 1-based.
};

[[noreturn]] void fail_at(int line, int col, const std::string& msg) {
  throw std::runtime_error("spef:" + std::to_string(line) + ":" +
                           std::to_string(col) + ": " + msg);
}

[[noreturn]] void fail_at(const Token& t, const std::string& msg) {
  fail_at(t.line, t.col, msg);
}

struct Tokenizer {
  explicit Tokenizer(std::istream& is) {
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      const auto slash = line.find("//");
      if (slash != std::string::npos) line.erase(slash);
      std::size_t i = 0;
      while (i < line.size()) {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
          ++i;
        const std::size_t start = i;
        while (i < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[i])))
          ++i;
        if (i > start)
          tokens.push_back({line.substr(start, i - start), lineno,
                            static_cast<int>(start) + 1});
      }
      end_line = lineno;
      end_col = static_cast<int>(line.size()) + 1;
    }
  }
  bool done() const { return pos >= tokens.size(); }
  const Token& peek() const {
    if (done()) fail_at(end_line, end_col, "unexpected end of input");
    return tokens[pos];
  }
  Token next() {
    Token t = peek();
    ++pos;
    return t;
  }
  double next_number() {
    const Token t = next();
    try {
      std::size_t used = 0;
      const double v = std::stod(t.text, &used);
      if (used != t.text.size()) throw std::invalid_argument(t.text);
      // stod accepts "inf"/"nan" spellings; a deck carrying them would
      // poison every downstream solve, so reject at the gate.
      if (!std::isfinite(v)) fail_at(t, "non-finite number '" + t.text + "'");
      return v;
    } catch (const std::out_of_range&) {
      fail_at(t, "number out of range '" + t.text + "'");
    } catch (const std::invalid_argument&) {
      fail_at(t, "expected a number, got '" + t.text + "'");
    }
  }
  /// A bounded non-negative integer (node index, sink). Rejects the
  /// floating-point spellings next_number() would accept: an index must
  /// be digits only, and static_cast<int>(1e300) is UB we never reach.
  int next_index() {
    const Token t = next();
    return parse_index(t, t.text);
  }
  static int parse_index(const Token& at, const std::string& digits) {
    if (digits.empty() || digits.size() > 7 ||
        !std::all_of(digits.begin(), digits.end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c));
        }))
      fail_at(at, "bad node index '" + digits + "'");
    const int v = std::stoi(digits);  // <= 7 digits: cannot overflow int.
    if (v > kMaxNodeIndex) fail_at(at, "node index too large '" + digits + "'");
    return v;
  }
  void expect(const std::string& what) {
    const Token t = next();
    if (t.text != what)
      fail_at(t, "expected '" + what + "', got '" + t.text + "'");
  }
  std::vector<Token> tokens;
  std::size_t pos = 0;
  int end_line = 0;
  int end_col = 1;
};

struct NodeRef {
  std::string net;
  int idx;
};

NodeRef parse_node(const Token& tok) {
  const auto colon = tok.text.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= tok.text.size())
    fail_at(tok, "bad node reference '" + tok.text + "'");
  NodeRef r;
  r.net = tok.text.substr(0, colon);
  r.idx = Tokenizer::parse_index(tok, tok.text.substr(colon + 1));
  return r;
}

struct RawCoupling {
  NodeRef a, b;
  double c;
};

struct RawNet {
  bool is_victim = false;
  GateParams driver;
  double input_slew = 0.0;
  bool output_rising = true;
  GateParams receiver;
  double receiver_load = 0.0;
  double sink_load = 2e-15;
  RcTree tree;
  int max_node = 0;
};

}  // namespace

namespace {

// The throwing parser core; the public entry points wrap it.
CoupledNet parse_spef(std::istream& is) {
  Tokenizer tz(is);
  // Chaos probe: a corrupted extraction deck. Keyed by a hash of the
  // token stream so whether a given deck "corrupts" is a pure function
  // of (spec, seed, content) — identical at any job count.
  if (fault::enabled()) {
    std::uint64_t key = 0;
    for (const auto& t : tz.tokens)
      for (const char c : t.text)
        key = fault::mix64(key ^ static_cast<unsigned char>(c));
    if (fault::should_fail(fault::Site::kSpefParse, key))
      throw std::runtime_error("injected fault: corrupted spef deck");
  }
  tz.expect("*SPEF");
  {
    const Token dialect = tz.next();
    if (dialect.text != "\"dnoise-subset-1\"")
      fail_at(dialect, "unsupported dialect");
  }
  std::map<std::string, RawNet> nets;
  std::vector<std::string> order;
  std::vector<RawCoupling> couplings;

  while (!tz.done()) {
    const Token tok = tz.next();
    if (tok.text == "*DESIGN") {
      tz.next();
    } else if (tok.text == "*T_UNIT" || tok.text == "*C_UNIT" ||
               tok.text == "*R_UNIT") {
      tz.next_number();
      tz.next();
    } else if (tok.text == "*D_NET") {
      const Token name_tok = tz.next();
      const std::string& name = name_tok.text;
      if (nets.count(name)) fail_at(name_tok, "duplicate net '" + name + "'");
      RawNet rn;
      const Token kind = tz.next();
      if (kind.text == "*VICTIM") rn.is_victim = true;
      else if (kind.text != "*AGGRESSOR")
        fail_at(kind, "expected *VICTIM/*AGGRESSOR");

      enum class Section { None, Cap, Res } section = Section::None;
      while (true) {
        const Token t = tz.next();
        if (t.text == "*END") break;
        if (t.text == "*DRIVER") {
          rn.driver.type = parse_type(tz.next().text);
          rn.driver.size = tz.next_number();
          rn.input_slew = tz.next_number() * kPs;
          const Token edge = tz.next();
          if (edge.text == "RISE") rn.output_rising = true;
          else if (edge.text == "FALL") rn.output_rising = false;
          else fail_at(edge, "expected RISE/FALL");
        } else if (t.text == "*RECEIVER") {
          rn.receiver.type = parse_type(tz.next().text);
          rn.receiver.size = tz.next_number();
          rn.receiver_load = tz.next_number() * kFf;
        } else if (t.text == "*SINKLOAD") {
          rn.sink_load = tz.next_number() * kFf;
        } else if (t.text == "*SINK") {
          rn.tree.sink = tz.next_index();
        } else if (t.text == "*CAP") {
          section = Section::Cap;
        } else if (t.text == "*RES") {
          section = Section::Res;
        } else if (section == Section::Cap) {
          const NodeRef a = parse_node(t);
          // Either "<node> <fF>" or "<node> <node> <fF>" (coupling).
          if (tz.peek().text.find(':') != std::string::npos) {
            const NodeRef b = parse_node(tz.next());
            couplings.push_back({a, b, tz.next_number() * kFf});
          } else {
            const double c = tz.next_number() * kFf;
            if (a.net != name) fail_at(t, "grounded cap on foreign net");
            rn.tree.caps.push_back({a.idx, c});
            rn.max_node = std::max(rn.max_node, a.idx);
          }
        } else if (section == Section::Res) {
          const NodeRef a = parse_node(t);
          const NodeRef b = parse_node(tz.next());
          if (a.net != name || b.net != name)
            fail_at(t, "resistor spans nets");
          rn.tree.res.push_back({a.idx, b.idx, tz.next_number()});
          rn.max_node = std::max({rn.max_node, a.idx, b.idx});
        } else {
          fail_at(t, "unexpected token '" + t.text + "'");
        }
      }
      rn.max_node = std::max(rn.max_node, rn.tree.sink);
      rn.tree.num_nodes = rn.max_node + 1;
      nets.emplace(name, std::move(rn));
      order.push_back(name);
    } else {
      fail_at(tok, "unexpected top-level token '" + tok.text + "'");
    }
  }

  // Assemble the CoupledNet: the victim plus aggressors in file order.
  CoupledNet out;
  std::map<std::string, int> agg_index;
  bool have_victim = false;
  for (const auto& name : order) {
    RawNet& rn = nets.at(name);
    if (rn.is_victim) {
      if (have_victim) throw std::runtime_error("spef: multiple victims");
      have_victim = true;
      out.victim.net = rn.tree;
      out.victim.driver = rn.driver;
      out.victim.input_slew = rn.input_slew;
      out.victim.output_rising = rn.output_rising;
      out.victim.receiver = rn.receiver;
      out.victim.receiver_load = rn.receiver_load;
    } else {
      AggressorDesc agg;
      agg.net = rn.tree;
      agg.driver = rn.driver;
      agg.input_slew = rn.input_slew;
      agg.output_rising = rn.output_rising;
      agg.sink_load = rn.sink_load;
      agg_index[name] = static_cast<int>(out.aggressors.size());
      out.aggressors.push_back(std::move(agg));
    }
  }
  if (!have_victim) throw std::runtime_error("spef: no victim net");

  auto victim_side = [&](const NodeRef& r) { return nets.at(r.net).is_victim; };
  for (const auto& rc : couplings) {
    if (!nets.count(rc.a.net) || !nets.count(rc.b.net))
      throw std::runtime_error("spef: coupling references unknown net");
    const bool a_victim = victim_side(rc.a);
    const bool b_victim = victim_side(rc.b);
    if (a_victim == b_victim)
      throw std::runtime_error(
          "spef: coupling must connect the victim to an aggressor");
    const NodeRef& vn = a_victim ? rc.a : rc.b;
    const NodeRef& an = a_victim ? rc.b : rc.a;
    out.couplings.push_back({agg_index.at(an.net), an.idx, vn.idx, rc.c});
  }
  out.validate();
  return out;
}

}  // namespace

StatusOr<CoupledNet> try_read_spef(std::istream& is) {
  static obs::Counter& c_parsed = obs::metrics().counter("spef.nets_parsed");
  static obs::Counter& c_errors = obs::metrics().counter("spef.parse_errors");
  static obs::Histogram& h_seconds =
      obs::metrics().histogram("stage.parse.seconds");
  obs::StageScope stage("spef.parse", "parse", h_seconds);
  try {
    StatusOr<CoupledNet> net = parse_spef(is);
    c_parsed.add();
    return net;
  } catch (const std::exception& e) {
    c_errors.add();
    return Status::InvalidArgument(e.what());
  }
}

StatusOr<CoupledNet> try_read_spef_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("spef: cannot open '" + path + "'");
  return try_read_spef(f);
}

void write_spef_file(const std::string& path, const CoupledNet& net,
                     const std::string& design) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("spef: cannot open '" + path + "' for write");
  write_spef(f, net, design);
}

}  // namespace dn
