#include "rcnet/spef.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/trace.hpp"

namespace dn {

namespace {

constexpr double kPs = 1e-12;
constexpr double kFf = 1e-15;

const char* type_token(GateType t) {
  switch (t) {
    case GateType::Inverter: return "INV";
    case GateType::Buffer: return "BUF";
    case GateType::Nand2: return "NAND2";
    case GateType::Nor2: return "NOR2";
  }
  return "INV";
}

GateType parse_type(const std::string& s) {
  if (s == "INV") return GateType::Inverter;
  if (s == "BUF") return GateType::Buffer;
  if (s == "NAND2") return GateType::Nand2;
  if (s == "NOR2") return GateType::Nor2;
  throw std::runtime_error("spef: unknown gate type '" + s + "'");
}

std::string node_ref(const std::string& net, int idx) {
  return net + ":" + std::to_string(idx);
}

void write_net_block(std::ostream& os, const std::string& name,
                     const RcTree& tree,
                     const std::vector<std::string>& coupling_lines = {}) {
  os << "*SINK " << tree.sink << "\n";
  os << "*CAP\n";
  for (const auto& c : tree.caps)
    os << node_ref(name, c.node) << " " << c.c / kFf << "\n";
  for (const auto& line : coupling_lines) os << line << "\n";
  os << "*RES\n";
  for (const auto& r : tree.res)
    os << node_ref(name, r.a) << " " << node_ref(name, r.b) << " " << r.r
       << "\n";
}

}  // namespace

void write_spef(std::ostream& os, const CoupledNet& net,
                const std::string& design) {
  net.validate();
  os.precision(12);  // Values must survive a round trip.
  os << "*SPEF \"dnoise-subset-1\"\n";
  os << "*DESIGN " << design << "\n";
  os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";

  const auto& v = net.victim;
  os << "*D_NET victim *VICTIM\n";
  os << "*DRIVER " << type_token(v.driver.type) << " " << v.driver.size << " "
     << v.input_slew / kPs << " " << (v.output_rising ? "RISE" : "FALL")
     << "\n";
  os << "*RECEIVER " << type_token(v.receiver.type) << " " << v.receiver.size
     << " " << v.receiver_load / kFf << "\n";
  // Victim block carries the coupling caps inside its *CAP section.
  std::vector<std::string> coupling_lines;
  for (const auto& cc : net.couplings) {
    std::ostringstream line;
    line.precision(12);
    line << node_ref("victim", cc.victim_node) << " "
         << node_ref("agg" + std::to_string(cc.aggressor), cc.aggressor_node)
         << " " << cc.c / kFf;
    coupling_lines.push_back(line.str());
  }
  write_net_block(os, "victim", v.net, coupling_lines);
  os << "*END\n\n";

  for (std::size_t k = 0; k < net.aggressors.size(); ++k) {
    const auto& a = net.aggressors[k];
    os << "*D_NET agg" << k << " *AGGRESSOR\n";
    os << "*DRIVER " << type_token(a.driver.type) << " " << a.driver.size
       << " " << a.input_slew / kPs << " "
       << (a.output_rising ? "RISE" : "FALL") << "\n";
    os << "*SINKLOAD " << a.sink_load / kFf << "\n";
    write_net_block(os, "agg" + std::to_string(k), a.net);
    os << "*END\n\n";
  }
}

namespace {

struct Tokenizer {
  explicit Tokenizer(std::istream& is) {
    std::string line;
    while (std::getline(is, line)) {
      const auto slash = line.find("//");
      if (slash != std::string::npos) line.erase(slash);
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens.push_back(tok);
    }
  }
  bool done() const { return pos >= tokens.size(); }
  const std::string& peek() const {
    if (done()) throw std::runtime_error("spef: unexpected end of input");
    return tokens[pos];
  }
  std::string next() {
    const std::string t = peek();
    ++pos;
    return t;
  }
  double next_number() {
    const std::string t = next();
    try {
      std::size_t used = 0;
      const double v = std::stod(t, &used);
      if (used != t.size()) throw std::invalid_argument(t);
      return v;
    } catch (const std::exception&) {
      throw std::runtime_error("spef: expected a number, got '" + t + "'");
    }
  }
  void expect(const std::string& what) {
    const std::string t = next();
    if (t != what)
      throw std::runtime_error("spef: expected '" + what + "', got '" + t + "'");
  }
  std::vector<std::string> tokens;
  std::size_t pos = 0;
};

struct NodeRef {
  std::string net;
  int idx;
};

NodeRef parse_node(const std::string& tok) {
  const auto colon = tok.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= tok.size())
    throw std::runtime_error("spef: bad node reference '" + tok + "'");
  NodeRef r;
  r.net = tok.substr(0, colon);
  try {
    r.idx = std::stoi(tok.substr(colon + 1));
  } catch (const std::exception&) {
    throw std::runtime_error("spef: bad node index in '" + tok + "'");
  }
  if (r.idx < 0) throw std::runtime_error("spef: negative node index");
  return r;
}

struct RawCoupling {
  NodeRef a, b;
  double c;
};

struct RawNet {
  bool is_victim = false;
  GateParams driver;
  double input_slew = 0.0;
  bool output_rising = true;
  GateParams receiver;
  double receiver_load = 0.0;
  double sink_load = 2e-15;
  RcTree tree;
  int max_node = 0;
};

}  // namespace

namespace {

// The throwing parser core; the public entry points wrap it.
CoupledNet parse_spef(std::istream& is) {
  Tokenizer tz(is);
  tz.expect("*SPEF");
  if (tz.next() != "\"dnoise-subset-1\"")
    throw std::runtime_error("spef: unsupported dialect");
  std::map<std::string, RawNet> nets;
  std::vector<std::string> order;
  std::vector<RawCoupling> couplings;

  while (!tz.done()) {
    const std::string tok = tz.next();
    if (tok == "*DESIGN") {
      tz.next();
    } else if (tok == "*T_UNIT" || tok == "*C_UNIT" || tok == "*R_UNIT") {
      tz.next_number();
      tz.next();
    } else if (tok == "*D_NET") {
      const std::string name = tz.next();
      if (nets.count(name))
        throw std::runtime_error("spef: duplicate net '" + name + "'");
      RawNet rn;
      const std::string kind = tz.next();
      if (kind == "*VICTIM") rn.is_victim = true;
      else if (kind != "*AGGRESSOR")
        throw std::runtime_error("spef: expected *VICTIM/*AGGRESSOR");

      enum class Section { None, Cap, Res } section = Section::None;
      while (true) {
        const std::string t = tz.next();
        if (t == "*END") break;
        if (t == "*DRIVER") {
          rn.driver.type = parse_type(tz.next());
          rn.driver.size = tz.next_number();
          rn.input_slew = tz.next_number() * kPs;
          const std::string edge = tz.next();
          if (edge == "RISE") rn.output_rising = true;
          else if (edge == "FALL") rn.output_rising = false;
          else throw std::runtime_error("spef: expected RISE/FALL");
        } else if (t == "*RECEIVER") {
          rn.receiver.type = parse_type(tz.next());
          rn.receiver.size = tz.next_number();
          rn.receiver_load = tz.next_number() * kFf;
        } else if (t == "*SINKLOAD") {
          rn.sink_load = tz.next_number() * kFf;
        } else if (t == "*SINK") {
          rn.tree.sink = static_cast<int>(tz.next_number());
        } else if (t == "*CAP") {
          section = Section::Cap;
        } else if (t == "*RES") {
          section = Section::Res;
        } else if (section == Section::Cap) {
          const NodeRef a = parse_node(t);
          // Either "<node> <fF>" or "<node> <node> <fF>" (coupling).
          if (tz.peek().find(':') != std::string::npos) {
            const NodeRef b = parse_node(tz.next());
            couplings.push_back({a, b, tz.next_number() * kFf});
          } else {
            const double c = tz.next_number() * kFf;
            if (a.net != name)
              throw std::runtime_error("spef: grounded cap on foreign net");
            rn.tree.caps.push_back({a.idx, c});
            rn.max_node = std::max(rn.max_node, a.idx);
          }
        } else if (section == Section::Res) {
          const NodeRef a = parse_node(t);
          const NodeRef b = parse_node(tz.next());
          if (a.net != name || b.net != name)
            throw std::runtime_error("spef: resistor spans nets");
          rn.tree.res.push_back({a.idx, b.idx, tz.next_number()});
          rn.max_node = std::max({rn.max_node, a.idx, b.idx});
        } else {
          throw std::runtime_error("spef: unexpected token '" + t + "'");
        }
      }
      rn.max_node = std::max(rn.max_node, rn.tree.sink);
      rn.tree.num_nodes = rn.max_node + 1;
      nets.emplace(name, std::move(rn));
      order.push_back(name);
    } else {
      throw std::runtime_error("spef: unexpected top-level token '" + tok + "'");
    }
  }

  // Assemble the CoupledNet: the victim plus aggressors in file order.
  CoupledNet out;
  std::map<std::string, int> agg_index;
  bool have_victim = false;
  for (const auto& name : order) {
    RawNet& rn = nets.at(name);
    if (rn.is_victim) {
      if (have_victim) throw std::runtime_error("spef: multiple victims");
      have_victim = true;
      out.victim.net = rn.tree;
      out.victim.driver = rn.driver;
      out.victim.input_slew = rn.input_slew;
      out.victim.output_rising = rn.output_rising;
      out.victim.receiver = rn.receiver;
      out.victim.receiver_load = rn.receiver_load;
    } else {
      AggressorDesc agg;
      agg.net = rn.tree;
      agg.driver = rn.driver;
      agg.input_slew = rn.input_slew;
      agg.output_rising = rn.output_rising;
      agg.sink_load = rn.sink_load;
      agg_index[name] = static_cast<int>(out.aggressors.size());
      out.aggressors.push_back(std::move(agg));
    }
  }
  if (!have_victim) throw std::runtime_error("spef: no victim net");

  auto victim_side = [&](const NodeRef& r) { return nets.at(r.net).is_victim; };
  for (const auto& rc : couplings) {
    if (!nets.count(rc.a.net) || !nets.count(rc.b.net))
      throw std::runtime_error("spef: coupling references unknown net");
    const bool a_victim = victim_side(rc.a);
    const bool b_victim = victim_side(rc.b);
    if (a_victim == b_victim)
      throw std::runtime_error(
          "spef: coupling must connect the victim to an aggressor");
    const NodeRef& vn = a_victim ? rc.a : rc.b;
    const NodeRef& an = a_victim ? rc.b : rc.a;
    out.couplings.push_back({agg_index.at(an.net), an.idx, vn.idx, rc.c});
  }
  out.validate();
  return out;
}

}  // namespace

StatusOr<CoupledNet> try_read_spef(std::istream& is) {
  static obs::Counter& c_parsed = obs::metrics().counter("spef.nets_parsed");
  static obs::Counter& c_errors = obs::metrics().counter("spef.parse_errors");
  static obs::Histogram& h_seconds =
      obs::metrics().histogram("stage.parse.seconds");
  obs::StageScope stage("spef.parse", "parse", h_seconds);
  try {
    StatusOr<CoupledNet> net = parse_spef(is);
    c_parsed.add();
    return net;
  } catch (const std::exception& e) {
    c_errors.add();
    return Status::InvalidArgument(e.what());
  }
}

StatusOr<CoupledNet> try_read_spef_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("spef: cannot open '" + path + "'");
  return try_read_spef(f);
}

CoupledNet read_spef(std::istream& is) { return parse_spef(is); }

CoupledNet read_spef_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("spef: cannot open '" + path + "'");
  return parse_spef(f);
}

void write_spef_file(const std::string& path, const CoupledNet& net,
                     const std::string& design) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("spef: cannot open '" + path + "' for write");
  write_spef(f, net, design);
}

}  // namespace dn
