#include "rcnet/net_hash.hpp"

namespace dn {

void hash_tree(HashStream& h, const RcTree& t) {
  h.i32(t.num_nodes).i32(t.sink);
  h.u64(t.res.size());
  for (const NetRes& r : t.res) h.i32(r.a).i32(r.b).f64(r.r);
  h.u64(t.caps.size());
  for (const NetCap& c : t.caps) h.i32(c.node).f64(c.c);
}

void hash_gate(HashStream& h, const GateParams& g) {
  h.i32(static_cast<int>(g.type)).f64(g.size).f64(g.vdd);
  h.f64(g.wn_unit).f64(g.wp_unit);
  for (const MosfetParams* p : {&g.nmos_proto, &g.pmos_proto})
    h.i32(static_cast<int>(p->type))
        .f64(p->w)
        .f64(p->l)
        .f64(p->vt)
        .f64(p->kp)
        .f64(p->lambda)
        .f64(p->cg_per_m)
        .f64(p->cj_per_m);
}

void hash_coupled_net(HashStream& h, const CoupledNet& net) {
  hash_tree(h, net.victim.net);
  hash_gate(h, net.victim.driver);
  hash_gate(h, net.victim.receiver);
  h.f64(net.victim.input_slew)
      .boolean(net.victim.output_rising)
      .f64(net.victim.receiver_load);
  h.u64(net.aggressors.size());
  for (const AggressorDesc& a : net.aggressors) {
    hash_tree(h, a.net);
    hash_gate(h, a.driver);
    h.f64(a.input_slew).boolean(a.output_rising).f64(a.sink_load);
    // Windows prune the alignment domain, so results depend on them.
    h.f64(a.window_early).f64(a.window_late);
  }
  h.u64(net.couplings.size());
  for (const Coupling& c : net.couplings)
    h.i32(c.aggressor).i32(c.aggressor_node).i32(c.victim_node).f64(c.c);
  h.u64(net.exclusions.size());
  for (const AggressorExclusion& e : net.exclusions) h.i32(e.a).i32(e.b);
}

std::uint64_t content_hash(const CoupledNet& net) {
  HashStream h;
  hash_coupled_net(h, net);
  return h.digest();
}

}  // namespace dn
