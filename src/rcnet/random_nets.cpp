#include "rcnet/random_nets.hpp"

#include <algorithm>

namespace dn {

namespace {

GateParams gate_of(GateType type, double size, double vdd) {
  GateParams g;
  g.type = type;
  g.size = size;
  g.vdd = vdd;
  return g;
}

}  // namespace

CoupledNet random_coupled_net(Rng& rng, const RandomNetConfig& cfg) {
  CoupledNet cn;
  const double vdd = cfg.vdd;

  // Victim: medium wire, small-to-medium driver (weak victims are where
  // delay noise hurts).
  const int vseg = rng.uniform_int(cfg.min_segments, cfg.max_segments);
  const double vr = rng.log_uniform(cfg.r_total_min, cfg.r_total_max);
  const double vc = rng.log_uniform(cfg.c_total_min, cfg.c_total_max);
  cn.victim.net = make_line(vseg, vr, vc);
  cn.victim.driver = gate_of(
      GateType::Inverter,
      cfg.victim_sizes[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(cfg.victim_sizes.size()) - 1))],
      vdd);
  cn.victim.input_slew = rng.uniform(cfg.slew_min, cfg.slew_max);
  cn.victim.output_rising =
      cfg.randomize_victim_direction ? rng.chance(0.5) : true;
  cn.victim.receiver = gate_of(
      GateType::Inverter,
      cfg.receiver_sizes[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(cfg.receiver_sizes.size()) - 1))],
      vdd);
  cn.victim.receiver_load = rng.log_uniform(cfg.rcv_load_min, cfg.rcv_load_max);

  // Aggressors: opposite switching direction (the delay-increasing case),
  // typically stronger drivers than the victim.
  const int n_agg = rng.uniform_int(cfg.min_aggressors, cfg.max_aggressors);
  const double cc_total =
      vc * rng.uniform(cfg.coupling_ratio_min, cfg.coupling_ratio_max);
  for (int k = 0; k < n_agg; ++k) {
    AggressorDesc agg;
    const int aseg = rng.uniform_int(cfg.min_segments, cfg.max_segments);
    agg.net = make_line(aseg, rng.log_uniform(cfg.r_total_min, cfg.r_total_max),
                        rng.log_uniform(cfg.c_total_min, cfg.c_total_max));
    agg.driver = gate_of(
        GateType::Inverter,
        cfg.aggressor_sizes[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(cfg.aggressor_sizes.size()) - 1))],
        vdd);
    agg.input_slew = rng.uniform(cfg.slew_min, cfg.slew_max);
    agg.output_rising = !cn.victim.output_rising;
    agg.sink_load = rng.uniform(2e-15, 8e-15);
    cn.aggressors.push_back(agg);

    // Couple along an overlap region: distribute this aggressor's share of
    // the total coupling across a run of adjacent victim nodes, mapped
    // proportionally onto the aggressor's own nodes.
    const double cc_this = cc_total / n_agg;
    const int overlap = std::max(1, rng.uniform_int(vseg / 2, vseg));
    const int v_start = rng.uniform_int(1, std::max(1, vseg - overlap + 1));
    for (int j = 0; j < overlap; ++j) {
      const int vnode = std::min(v_start + j, vseg);
      const int anode =
          std::clamp(1 + (j * aseg) / overlap, 1, aseg);
      cn.couplings.push_back({k, anode, vnode, cc_this / overlap});
    }
  }
  cn.validate();
  return cn;
}

CoupledNet example_coupled_net(int n_aggressors) {
  CoupledNet cn;
  cn.victim.net = make_line(6, 1200.0, 60e-15);
  cn.victim.driver = gate_of(GateType::Inverter, 1.0, 1.8);
  cn.victim.input_slew = 150e-12;
  cn.victim.output_rising = true;
  cn.victim.receiver = gate_of(GateType::Inverter, 2.0, 1.8);
  cn.victim.receiver_load = 10e-15;

  for (int k = 0; k < n_aggressors; ++k) {
    AggressorDesc agg;
    agg.net = make_line(6, 600.0, 50e-15);
    agg.driver = gate_of(GateType::Inverter, 4.0, 1.8);
    agg.input_slew = 80e-12;
    agg.output_rising = false;  // Opposes the rising victim.
    cn.aggressors.push_back(agg);
    // Coupled along the full run, 40 fF total split over 5 interior nodes.
    for (int j = 1; j <= 5; ++j)
      cn.couplings.push_back({k, j, j, 40e-15 / 5 / n_aggressors});
  }
  cn.validate();
  return cn;
}

}  // namespace dn
