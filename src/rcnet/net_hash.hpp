// Content hashing for net-level structures.
//
// The resident server and the reduction cache key cached artifacts by
// WHAT a net is, not by where it lives: two bit-identical CoupledNets
// hash equal regardless of pointer identity, session, or load order, and
// any single-field edit (one resistor, one driver size) changes the hash.
// FNV-1a over the exact IEEE-754 bit patterns — no float rounding in the
// key, so "changed" means changed.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "rcnet/net.hpp"

namespace dn {

/// Incremental FNV-1a 64-bit hasher.
class HashStream {
 public:
  HashStream& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ULL;
    }
    return *this;
  }
  HashStream& u64(std::uint64_t v) { return bytes(&v, sizeof v); }
  HashStream& i32(int v) { return u64(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(v))); }
  HashStream& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }
  HashStream& boolean(bool v) { return u64(v ? 1 : 0); }
  HashStream& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
};

/// Feed a structure into an ongoing hash.
void hash_tree(HashStream& h, const RcTree& t);
void hash_gate(HashStream& h, const GateParams& g);
void hash_coupled_net(HashStream& h, const CoupledNet& net);

/// One-shot content hash of a full coupled net (victim, aggressors,
/// couplings, drivers, receiver — everything analysis reads).
std::uint64_t content_hash(const CoupledNet& net);

}  // namespace dn
