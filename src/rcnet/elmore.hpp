// Closed-form interconnect delay estimates on RC trees.
//
// Elmore delay (the first moment of the impulse response) and the D2M
// "delay with two moments" metric. These are the quick estimators every
// timing flow keeps next to simulation: the noise tool uses them for
// net ordering/filtering (cf. Guardiani et al.'s crosstalk net sorting),
// and the tests validate them against the transient simulator.
#pragma once

#include <vector>

#include "rcnet/net.hpp"

namespace dn {

/// First and second moments (m1, m2) of the transfer function from the
/// root (node 0, driven ideally) to every node of the tree.
struct TreeMoments {
  std::vector<double> m1;  // -m1[n] = Elmore delay to node n [s].
  std::vector<double> m2;  // Second moment [s^2].
};

/// Computes moments by the standard tree traversal. `extra_cap[n]` (may be
/// empty) adds lumped grounded cap per node (pin loads, grounded coupling).
/// Requires a tree (exactly one resistive path root->node); throws on
/// resistor loops.
TreeMoments tree_moments(const RcTree& tree,
                         const std::vector<double>& extra_cap = {});

/// Elmore delay to `node` [s] (= -m1).
double elmore_delay(const RcTree& tree, int node,
                    const std::vector<double>& extra_cap = {});

/// D2M metric of Alpert et al.: D2M = m1^2 / sqrt(m2) * ln(2) — a tighter
/// 50% delay estimate than Elmore for far-from-root nodes.
double d2m_delay(const RcTree& tree, int node,
                 const std::vector<double>& extra_cap = {});

}  // namespace dn
