#include "rcnet/net_io.hpp"

#include <ostream>
#include <istream>

namespace dn {

namespace {

constexpr const char* kNetMagic = "dnoise-coupled-net";
constexpr int kNetVersion = 1;
/// Element-count sanity bound: a record claiming more than this is
/// treated as corruption, not as an allocation request.
constexpr long kMaxElements = 10'000'000;

Status corrupt(const char* what) {
  return Status::InvalidArgument(std::string("coupled-net record: ") + what);
}

StatusOr<long> read_count(std::istream& is, const char* what) {
  long n = 0;
  if (!(is >> n) || n < 0 || n > kMaxElements) return corrupt(what);
  return n;
}

void write_mosfet(std::ostream& os, const MosfetParams& p) {
  os << static_cast<int>(p.type) << ' ' << p.w << ' ' << p.l << ' ' << p.vt
     << ' ' << p.kp << ' ' << p.lambda << ' ' << p.cg_per_m << ' '
     << p.cj_per_m;
}

bool read_mosfet(std::istream& is, MosfetParams& p) {
  int type = 0;
  if (!(is >> type >> p.w >> p.l >> p.vt >> p.kp >> p.lambda >> p.cg_per_m >>
        p.cj_per_m))
    return false;
  p.type = static_cast<MosType>(type);
  return true;
}

void write_tree(std::ostream& os, const RcTree& t) {
  os << t.num_nodes << ' ' << t.sink << '\n';
  os << t.res.size() << '\n';
  for (const NetRes& r : t.res) os << r.a << ' ' << r.b << ' ' << r.r << '\n';
  os << t.caps.size() << '\n';
  for (const NetCap& c : t.caps) os << c.node << ' ' << c.c << '\n';
}

StatusOr<RcTree> read_tree(std::istream& is) {
  RcTree t;
  if (!(is >> t.num_nodes >> t.sink)) return corrupt("bad tree header");
  StatusOr<long> nres = read_count(is, "bad resistor count");
  if (!nres.ok()) return nres.status();
  t.res.resize(static_cast<std::size_t>(*nres));
  for (NetRes& r : t.res)
    if (!(is >> r.a >> r.b >> r.r)) return corrupt("bad resistor");
  StatusOr<long> ncaps = read_count(is, "bad capacitor count");
  if (!ncaps.ok()) return ncaps.status();
  t.caps.resize(static_cast<std::size_t>(*ncaps));
  for (NetCap& c : t.caps)
    if (!(is >> c.node >> c.c)) return corrupt("bad capacitor");
  return t;
}

}  // namespace

void write_gate_params(std::ostream& os, const GateParams& g) {
  os << static_cast<int>(g.type) << ' ' << g.size << ' ' << g.vdd << ' '
     << g.wn_unit << ' ' << g.wp_unit << '\n';
  write_mosfet(os, g.nmos_proto);
  os << '\n';
  write_mosfet(os, g.pmos_proto);
  os << '\n';
}

StatusOr<GateParams> read_gate_params(std::istream& is) {
  GateParams g;
  int type = 0;
  if (!(is >> type >> g.size >> g.vdd >> g.wn_unit >> g.wp_unit))
    return corrupt("bad gate header");
  g.type = static_cast<GateType>(type);
  if (!read_mosfet(is, g.nmos_proto) || !read_mosfet(is, g.pmos_proto))
    return corrupt("bad mosfet prototype");
  return g;
}

void write_coupled_net(std::ostream& os, const CoupledNet& net) {
  const auto saved = os.precision(17);
  os << kNetMagic << ' ' << kNetVersion << '\n';

  write_tree(os, net.victim.net);
  write_gate_params(os, net.victim.driver);
  write_gate_params(os, net.victim.receiver);
  os << net.victim.input_slew << ' ' << (net.victim.output_rising ? 1 : 0)
     << ' ' << net.victim.receiver_load << '\n';

  os << net.aggressors.size() << '\n';
  for (const AggressorDesc& a : net.aggressors) {
    write_tree(os, a.net);
    write_gate_params(os, a.driver);
    os << a.input_slew << ' ' << (a.output_rising ? 1 : 0) << ' '
       << a.sink_load << ' ' << a.window_early << ' ' << a.window_late
       << '\n';
  }

  os << net.couplings.size() << '\n';
  for (const Coupling& c : net.couplings)
    os << c.aggressor << ' ' << c.aggressor_node << ' ' << c.victim_node
       << ' ' << c.c << '\n';

  os << net.exclusions.size() << '\n';
  for (const AggressorExclusion& e : net.exclusions)
    os << e.a << ' ' << e.b << '\n';
  os.precision(saved);
}

StatusOr<CoupledNet> read_coupled_net(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kNetMagic)
    return corrupt("unrecognized header");
  if (version != kNetVersion)
    return Status::InvalidArgument("coupled-net record: unsupported version " +
                                   std::to_string(version));
  CoupledNet net;

  StatusOr<RcTree> vt = read_tree(is);
  if (!vt.ok()) return vt.status();
  net.victim.net = std::move(*vt);
  StatusOr<GateParams> drv = read_gate_params(is);
  if (!drv.ok()) return drv.status();
  net.victim.driver = *drv;
  StatusOr<GateParams> rcv = read_gate_params(is);
  if (!rcv.ok()) return rcv.status();
  net.victim.receiver = *rcv;
  int rising = 0;
  if (!(is >> net.victim.input_slew >> rising >> net.victim.receiver_load))
    return corrupt("bad victim stimulus");
  net.victim.output_rising = rising != 0;

  StatusOr<long> naggs = read_count(is, "bad aggressor count");
  if (!naggs.ok()) return naggs.status();
  net.aggressors.resize(static_cast<std::size_t>(*naggs));
  for (AggressorDesc& a : net.aggressors) {
    StatusOr<RcTree> at = read_tree(is);
    if (!at.ok()) return at.status();
    a.net = std::move(*at);
    StatusOr<GateParams> ad = read_gate_params(is);
    if (!ad.ok()) return ad.status();
    a.driver = *ad;
    if (!(is >> a.input_slew >> rising >> a.sink_load >> a.window_early >>
          a.window_late))
      return corrupt("bad aggressor stimulus");
    a.output_rising = rising != 0;
  }

  StatusOr<long> ncoup = read_count(is, "bad coupling count");
  if (!ncoup.ok()) return ncoup.status();
  net.couplings.resize(static_cast<std::size_t>(*ncoup));
  for (Coupling& c : net.couplings)
    if (!(is >> c.aggressor >> c.aggressor_node >> c.victim_node >> c.c))
      return corrupt("bad coupling");

  StatusOr<long> nexcl = read_count(is, "bad exclusion count");
  if (!nexcl.ok()) return nexcl.status();
  net.exclusions.resize(static_cast<std::size_t>(*nexcl));
  for (AggressorExclusion& e : net.exclusions)
    if (!(is >> e.a >> e.b)) return corrupt("bad exclusion");

  return net;
}

}  // namespace dn
