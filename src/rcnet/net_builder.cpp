#include <stdexcept>

#include "rcnet/net.hpp"

namespace dn {

double RcTree::total_cap() const {
  double acc = 0.0;
  for (const auto& c : caps) acc += c.c;
  return acc;
}

void RcTree::validate() const {
  if (num_nodes < 1) throw std::invalid_argument("RcTree: no nodes");
  auto check = [&](int n, const char* what) {
    if (n < 0 || n >= num_nodes)
      throw std::invalid_argument(std::string("RcTree: bad node in ") + what);
  };
  check(sink, "sink");
  for (const auto& r : res) {
    check(r.a, "res");
    check(r.b, "res");
    if (r.r <= 0) throw std::invalid_argument("RcTree: non-positive resistance");
  }
  for (const auto& c : caps) {
    check(c.node, "cap");
    if (c.c < 0) throw std::invalid_argument("RcTree: negative capacitance");
  }
  // Connectivity from the root through resistors.
  std::vector<char> seen(static_cast<std::size_t>(num_nodes), 0);
  std::vector<int> stack{0};
  seen[0] = 1;
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    for (const auto& r : res) {
      const int other = (r.a == n) ? r.b : (r.b == n ? r.a : -1);
      if (other >= 0 && !seen[static_cast<std::size_t>(other)]) {
        seen[static_cast<std::size_t>(other)] = 1;
        stack.push_back(other);
      }
    }
  }
  for (int n = 0; n < num_nodes; ++n)
    if (!seen[static_cast<std::size_t>(n)])
      throw std::invalid_argument("RcTree: node unreachable from root: " +
                                  std::to_string(n));
}

std::vector<NodeId> RcTree::instantiate(Circuit& ckt,
                                        const std::string& prefix) const {
  validate();
  std::vector<NodeId> map(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n)
    map[static_cast<std::size_t>(n)] = ckt.node(prefix + std::to_string(n));
  for (const auto& r : res)
    ckt.add_resistor(map[static_cast<std::size_t>(r.a)],
                     map[static_cast<std::size_t>(r.b)], r.r);
  for (const auto& c : caps)
    if (c.c > 0)
      ckt.add_capacitor(map[static_cast<std::size_t>(c.node)], kGround, c.c);
  return map;
}

void CoupledNet::validate() const {
  victim.net.validate();
  for (const auto& a : aggressors) a.net.validate();
  for (const auto& cc : couplings) {
    if (cc.aggressor < 0 ||
        static_cast<std::size_t>(cc.aggressor) >= aggressors.size())
      throw std::invalid_argument("CoupledNet: bad aggressor index");
    const auto& agg = aggressors[static_cast<std::size_t>(cc.aggressor)];
    if (cc.aggressor_node < 0 || cc.aggressor_node >= agg.net.num_nodes)
      throw std::invalid_argument("CoupledNet: bad aggressor node");
    if (cc.victim_node < 0 || cc.victim_node >= victim.net.num_nodes)
      throw std::invalid_argument("CoupledNet: bad victim node");
    if (cc.c <= 0) throw std::invalid_argument("CoupledNet: bad coupling cap");
  }
  const int n = static_cast<int>(aggressors.size());
  for (const auto& ex : exclusions) {
    if (ex.a < 0 || ex.a >= n || ex.b < 0 || ex.b >= n)
      throw std::invalid_argument("CoupledNet: bad exclusion index");
    if (ex.a == ex.b)
      throw std::invalid_argument("CoupledNet: exclusion pairs an aggressor "
                                  "with itself");
  }
}

double CoupledNet::total_coupling_cap() const {
  double acc = 0.0;
  for (const auto& cc : couplings) acc += cc.c;
  return acc;
}

double CoupledNet::victim_total_load() const {
  return victim.net.total_cap() + total_coupling_cap() +
         victim.receiver.input_cap();
}

RcTree make_line(int segments, double r_total, double c_total) {
  if (segments < 1) throw std::invalid_argument("make_line: segments < 1");
  RcTree t;
  t.num_nodes = segments + 1;
  const double r = r_total / segments;
  const double c = c_total / segments;
  for (int k = 0; k < segments; ++k) {
    t.res.push_back({k, k + 1, r});
    t.caps.push_back({k + 1, c});
  }
  t.sink = segments;
  return t;
}

RcTree make_tree(int depth, double r_seg, double c_seg) {
  if (depth < 1) throw std::invalid_argument("make_tree: depth < 1");
  // Complete binary tree: node 0 is the root; children of k are 2k+1, 2k+2.
  RcTree t;
  const int n = (1 << (depth + 1)) - 1;
  t.num_nodes = n;
  for (int k = 0; k < (1 << depth) - 1; ++k) {
    t.res.push_back({k, 2 * k + 1, r_seg});
    t.res.push_back({k, 2 * k + 2, r_seg});
  }
  for (int k = 1; k < n; ++k) t.caps.push_back({k, c_seg});
  t.sink = n - 1;  // Right-most leaf.
  return t;
}

CoupledNet make_bus(int lanes, int segments, double r_total, double c_total,
                    double cc_adjacent) {
  if (lanes < 2) throw std::invalid_argument("make_bus: need >= 2 lanes");
  if (lanes % 2 == 0)
    throw std::invalid_argument("make_bus: odd lane count (victim centered)");
  CoupledNet cn;
  cn.victim.net = make_line(segments, r_total, c_total);
  cn.victim.driver = GateParams{GateType::Inverter, 1.0, 1.8};
  cn.victim.output_rising = true;
  cn.victim.receiver = GateParams{GateType::Inverter, 2.0, 1.8};

  const int victim_lane = lanes / 2;
  // Aggressor indices by lane (victim lane skipped).
  for (int lane = 0; lane < lanes; ++lane) {
    if (lane == victim_lane) continue;
    AggressorDesc agg;
    agg.net = make_line(segments, r_total, c_total);
    agg.driver = GateParams{GateType::Inverter, 4.0, 1.8};
    agg.output_rising = false;
    const int k = static_cast<int>(cn.aggressors.size());
    cn.aggressors.push_back(agg);
    // Only lanes adjacent to the victim couple to it.
    if (lane == victim_lane - 1 || lane == victim_lane + 1)
      for (int j = 1; j <= segments; ++j)
        cn.couplings.push_back({k, j, j, cc_adjacent / segments});
  }
  cn.validate();
  return cn;
}

Pwl driver_input_ramp(const GateParams& driver, double input_slew,
                      bool output_rising, double t_start) {
  const bool input_rising =
      gate_inverts(driver.type) ? !output_rising : output_rising;
  return input_rising ? Pwl::ramp(t_start, input_slew, 0.0, driver.vdd)
                      : Pwl::ramp(t_start, input_slew, driver.vdd, 0.0);
}

}  // namespace dn
