#include "server/session.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include <sys/stat.h>
#include <unistd.h>

#include "clarinet/report.hpp"
#include "util/fault_injection.hpp"
#include "util/metrics.hpp"

namespace dn::server {

namespace {

/// The config keys that change ANALYSIS RESULTS (as opposed to
/// scheduling: jobs, retries, deadlines, ranking depth). A config change
/// dirties every victim iff this fingerprint changes.
std::string analysis_fingerprint(const AnalysisConfig& cfg) {
  const json::Value all = cfg.to_json();
  static constexpr const char* kKeys[] = {
      "screen_below_ps",   "screen_vn_below_v",
      "fidelity_ladder",   "fidelity_threshold_ps",
      "fidelity_margin",   "fidelity_max_tier",
      "window_pruning",
      "exhaustive",        "thevenin",
      "prereduce",         "solver",
      "dt_ps",             "horizon_ns",
      "model_alignment_iterations", "rtr_max_iterations",
      "newton_max_iterations",      "newton_v_tol"};
  json::Object subset;
  for (const char* key : kKeys)
    if (const json::Value* v = all.find(key)) subset[key] = *v;
  return json::Value(std::move(subset)).dump();
}

/// Clears a per-request fault spec on every exit path, including the
/// throw-to-Status unwind in handle_line.
struct FaultGuard {
  bool active = false;
  ~FaultGuard() {
    if (active) fault::clear();
  }
};

StatusOr<std::string> required_string(const json::Value& req, const char* key) {
  const json::Value* v = req.find(key);
  if (!v)
    return Status::InvalidArgument(std::string("request missing \"") + key +
                                   "\"");
  return v->require_string(key);
}

}  // namespace

namespace {

/// State-directory file names. The caches are sidecars because they are
/// large and regenerable; the snapshot holds pointers + content hashes.
constexpr const char* kSnapshotFile = "snapshot.json";
constexpr const char* kJournalFile = "journal.wal";
constexpr const char* kCharCacheFile = "char_cache.dat";
constexpr const char* kReductionCacheFile = "reductions.dat";

}  // namespace

Session::Session(AnalysisConfig cfg, DurabilityOptions durability,
                 ProtocolLimits limits)
    : cfg_(std::move(cfg)),
      durability_(std::move(durability)),
      limits_(limits),
      cache_(std::make_shared<CharacterizationCache>(
          cfg_.batch.analyzer.table_spec)) {}

bool Session::is_mutation(const std::string& verb, const json::Value& req) {
  if (verb == "load_design" || verb == "update_net" ||
      verb == "update_driver")
    return true;
  // A config read is not a mutation; a config with "set" is (even when
  // the fingerprint ends up unchanged — replaying it is harmless).
  return verb == "config" && req.find("set") != nullptr;
}

Status Session::start_durability() {
  if (durability_.state_dir.empty()) return Status::Ok();
  const std::string& dir = durability_.state_dir;
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    return Status::Internal("state dir " + dir + ": " + std::strerror(errno));
  const std::string snap_path = dir + "/" + kSnapshotFile;
  const std::string wal_path = dir + "/" + kJournalFile;

  if (durability_.recover) {
    StatusOr<SnapshotData> snap = read_snapshot(snap_path);
    if (snap.ok()) {
      Status s = restore_from_snapshot(*snap);
      if (!s.ok()) return s;
      recovered_ = true;
    } else if (snap.status().code() != StatusCode::kNotFound) {
      // A corrupt snapshot is a hard error: serving without it would be
      // silent data loss the operator never asked for.
      return snap.status();
    }
    StatusOr<Journal::Replay> replay = Journal::read(wal_path);
    if (replay.ok()) {
      for (const Journal::Entry& e : replay->entries) {
        if (e.seq <= seq_) continue;  // Covered by the snapshot.
        if (e.is_request()) {
          // Replay re-runs the original request verbatim through the
          // same deterministic handlers. A request that failed
          // validation the first time fails identically now; its
          // (discarded) response is the proof nothing was applied.
          const json::Value* verb = e.request.find("verb");
          if (verb && verb->is_string()) {
            json::Object ignored;
            (void)dispatch_verb(verb->as_string(), e.request, ignored,
                                Admission::kAccept);
          }
          ++replayed_;
        }
        seq_ = e.seq;
      }
      if (replay->torn_tail) {
        // Amputate the torn tail so new appends follow the last valid
        // record instead of being buried behind garbage.
        torn_tail_discarded_ = true;
        Status ts = durable::truncate_file(wal_path, replay->valid_bytes);
        if (!ts.ok()) return ts;
      }
      recovered_ = true;
    } else if (replay.status().code() != StatusCode::kNotFound) {
      return replay.status();
    }
  } else {
    // Fresh start: discard prior state so a later --recover replays only
    // this run's history.
    ::unlink(snap_path.c_str());
    ::unlink(wal_path.c_str());
    ::unlink((dir + "/" + kCharCacheFile).c_str());
    ::unlink((dir + "/" + kReductionCacheFile).c_str());
  }

  Status s = journal_.open(wal_path, durability_.fsync);
  if (!s.ok()) return s;
  if (recovered_ && has_design_) {
    // Byte-identity by recompute: every victim is dirty, per-net
    // analysis is deterministic, so the next analyze reproduces exactly
    // the report a never-crashed session would serve.
    mark_all_dirty();
    warmup_ = true;
  }
  return Status::Ok();
}

Status Session::restore_from_snapshot(const SnapshotData& snap) {
  Status s = cfg_.apply(snap.config);
  if (!s.ok())
    return Status::InvalidArgument("snapshot config rejected: " + s.message());
  // The table spec may differ from the boot config now that the
  // snapshot's config is in force; rebuild the cache around it so a
  // spec-skewed sidecar is rejected by load() below.
  cache_ = std::make_shared<CharacterizationCache>(
      cfg_.batch.analyzer.table_spec);
  if (snap.has_design) {
    StatusOr<Design> d = Design::from_json(snap.design);
    if (!d.ok()) return d.status();
    design_ = std::move(*d);
    rebind_design();
  }
  seq_ = snap.seq;

  // Cache sidecars are performance-only — a miss re-derives the same
  // bytes — so load is best-effort: verify the snapshot's whole-file
  // hash, then let the loader verify its embedded payload hash; any
  // mismatch skips the file.
  const std::string& dir = durability_.state_dir;
  if (!snap.char_cache_file.empty()) {
    StatusOr<std::string> bytes =
        durable::read_file(dir + "/" + snap.char_cache_file);
    if (bytes.ok() && durable::fnv1a(*bytes) == snap.char_cache_hash) {
      std::istringstream is(*bytes);
      (void)cache_->load(is);
    }
  }
  if (!snap.reduction_cache_file.empty()) {
    StatusOr<std::string> bytes =
        durable::read_file(dir + "/" + snap.reduction_cache_file);
    if (bytes.ok() && durable::fnv1a(*bytes) == snap.reduction_cache_hash) {
      std::istringstream is(*bytes);
      (void)reductions_.load(is);
    }
  }
  return Status::Ok();
}

Status Session::snapshot_now() {
  if (!journal_.is_open())
    return Status::FailedPrecondition("snapshot: durability is not enabled");
  const std::string& dir = durability_.state_dir;

  SnapshotData snap;
  snap.seq = seq_;
  snap.config = cfg_.to_json();
  if (has_design_) {
    snap.has_design = true;
    snap.design = design_.to_json();
  }
  // Sidecars before the snapshot that points at them; each is atomic on
  // its own, and a crash between leaves the OLD snapshot pointing at its
  // own (still hash-consistent) files or at nothing.
  if (cache_->tables_cached() > 0 &&
      cache_->save_file(dir + "/" + kCharCacheFile).ok()) {
    StatusOr<std::string> bytes =
        durable::read_file(dir + "/" + kCharCacheFile);
    if (bytes.ok()) {
      snap.char_cache_file = kCharCacheFile;
      snap.char_cache_hash = durable::fnv1a(*bytes);
    }
  }
  if (reductions_.size() > 0 &&
      reductions_.save_file(dir + "/" + kReductionCacheFile).ok()) {
    StatusOr<std::string> bytes =
        durable::read_file(dir + "/" + kReductionCacheFile);
    if (bytes.ok()) {
      snap.reduction_cache_file = kReductionCacheFile;
      snap.reduction_cache_hash = durable::fnv1a(*bytes);
    }
  }

  Status s = write_snapshot(dir + "/" + kSnapshotFile, snap);
  if (!s.ok()) {
    ++snapshot_failures_;
    return s;
  }
  // The snapshot covers every journaled mutation (seq_), so the journal
  // is redundant. A crash RIGHT HERE is fine: replay skips entries with
  // seq <= snapshot.seq.
  Status ts = journal_.truncate();
  if (!ts.ok()) {
    ++snapshot_failures_;
    return ts;
  }
  mutations_since_snapshot_ = 0;
  ++snapshots_;
  return Status::Ok();
}

Status Session::graceful_stop() {
  if (!journal_.is_open()) return Status::Ok();
  Status s = snapshot_now();
  if (!s.ok()) return s;
  journal_.close();
  return Status::Ok();
}

json::Value Session::respond(const json::Value* id, Status status,
                             json::Object result) const {
  json::Object o;
  o["schema_version"] = kReportSchemaVersion;
  if (id) o["id"] = *id;
  o["ok"] = status.ok();
  if (status.ok()) {
    o["result"] = json::Value(std::move(result));
  } else {
    json::Object err;
    err["code"] = status_code_name(status.code());
    err["message"] = status.message();
    o["error"] = json::Value(std::move(err));
  }
  return json::Value(std::move(o));
}

json::Value Session::handle_line(const std::string& line,
                                 Admission admission) {
  ++requests_;
  // Size limit BEFORE parsing: a pathologically long line is rejected
  // for the cost of strlen, not of building its value tree.
  if (limits_.max_request_bytes > 0 &&
      line.size() > limits_.max_request_bytes) {
    ++errors_;
    return respond(nullptr,
                   Status::InvalidArgument(
                       "request of " + std::to_string(line.size()) +
                       " bytes exceeds the per-request limit of " +
                       std::to_string(limits_.max_request_bytes)),
                   {});
  }
  StatusOr<json::Value> parsed = json::parse(line);
  if (!parsed.ok()) {
    ++errors_;
    return respond(nullptr, parsed.status(), {});
  }
  const json::Value* id = parsed->find("id");
  if (limits_.max_request_nodes > 0 &&
      json::node_count(*parsed) > limits_.max_request_nodes) {
    ++errors_;
    return respond(id,
                   Status::InvalidArgument(
                       "request exceeds the per-request field-count limit "
                       "of " +
                       std::to_string(limits_.max_request_nodes)),
                   {});
  }
  if (shutdown_) {
    // Post-shutdown drain: every remaining pipelined request still gets
    // a response (kUnavailable, ordered) so clients never hang on a
    // missing line.
    ++errors_;
    return respond(id, Status::Unavailable("server is shutting down"), {});
  }
  if (admission == Admission::kShed) {
    ++shed_;
    ++errors_;
    return respond(id,
                   Status::Unavailable(
                       "server overloaded: request shed by admission control"),
                   {});
  }
  // Recovery-aware admission: until the first post-recovery analyze
  // succeeds, soft-pressure degradation is promoted back to full
  // fidelity — degrading the full-design recompute would leave every
  // victim dirty and the backlog permanent.
  if (warmup_ && admission == Admission::kDegrade) {
    admission = Admission::kAccept;
    ++warmup_promotions_;
  }
  if (admission == Admission::kDegrade) ++degraded_admission_;

  Status status;
  json::Object result;
  const json::Value* verb_v = parsed->find("verb");
  StatusOr<std::string> verb =
      verb_v ? verb_v->require_string("verb")
             : StatusOr<std::string>(
                   Status::InvalidArgument("request missing \"verb\""));
  if (!verb.ok()) {
    status = verb.status();
  } else {
    const bool mutating = is_mutation(*verb, *parsed);
    if (mutating && journal_.is_open()) {
      // Write-ahead: the mutation reaches the journal BEFORE it touches
      // session state, so the journal is always a superset of what was
      // applied. A journal append failure refuses the mutation — the
      // reverse order would make replay silently lose it.
      Status js = journal_.append_request(seq_ + 1, *parsed);
      if (!js.ok()) {
        ++errors_;
        return respond(id, js, {});
      }
      ++seq_;
    }
    status = dispatch_verb(*verb, *parsed, result, admission);
    if (mutating && journal_.is_open() && status.ok()) {
      ++mutations_since_snapshot_;
      if (durability_.snapshot_every > 0 &&
          mutations_since_snapshot_ >= durability_.snapshot_every)
        (void)snapshot_now();  // Best-effort; failures are counted.
    }
  }
  if (!status.ok()) ++errors_;
  return respond(id, status, std::move(result));
}

Status Session::dispatch_verb(const std::string& verb,
                              const json::Value& req, json::Object& result,
                              Admission admission) {
  // The Status boundary of the whole protocol: a handler bug or a
  // throwing layer below must become a response, never kill the
  // session. Journal replay shares this boundary.
  try {
    if (verb == "ping") return Status::Ok();
    if (verb == "load_design") return verb_load_design(req, result);
    if (verb == "update_net") return verb_update_net(req, result);
    if (verb == "update_driver") return verb_update_driver(req, result);
    if (verb == "analyze") {
      Status s = verb_analyze(req, result, admission);
      if (s.ok()) warmup_ = false;
      return s;
    }
    if (verb == "config") return verb_config(req, result);
    if (verb == "stats") return verb_stats(result);
    if (verb == "save_cache") return verb_save_cache(req, result);
    if (verb == "load_cache") return verb_load_cache(req, result);
    if (verb == "snapshot") return verb_snapshot(result);
    if (verb == "shutdown") {
      shutdown_ = true;
      return Status::Ok();
    }
    return Status::InvalidArgument("unknown verb \"" + verb + "\"");
  } catch (const std::exception& e) {
    return status_from_exception(e);
  }
}

Status Session::verb_snapshot(json::Object& result) {
  Status s = snapshot_now();
  if (!s.ok()) return s;
  result["seq"] = seq_;
  result["snapshots"] = snapshots_;
  return Status::Ok();
}

void Session::rebind_design() {
  victims_ = design_.victims();
  slots_.assign(victims_.size(), BatchNetResult{});
  dirty_.assign(victims_.size(), true);
  has_design_ = true;
}

void Session::mark_all_dirty() {
  std::fill(dirty_.begin(), dirty_.end(), true);
}

void Session::invalidate(int net_index, json::Object& result) {
  json::Array names;
  for (const int v : design_.affected_victims(net_index)) {
    const auto it = std::lower_bound(victims_.begin(), victims_.end(), v);
    if (it == victims_.end() || *it != v) continue;
    dirty_[static_cast<std::size_t>(it - victims_.begin())] = true;
    names.push_back(design_.net(v).name);
  }
  result["invalidated"] = std::move(names);
}

Status Session::verb_load_design(const json::Value& req,
                                 json::Object& result) {
  const json::Value* spec = req.find("design");
  if (!spec || !spec->is_object())
    return Status::InvalidArgument(
        "load_design: missing \"design\" object");

  if (const json::Value* random = spec->find("random")) {
    std::uint64_t seed = 1;
    int nets = 0, neighbors = 2;
    if (const json::Value* v = random->find("seed")) {
      StatusOr<int> r = v->require_int("seed");
      if (!r.ok()) return r.status();
      seed = static_cast<std::uint64_t>(*r);
    }
    if (const json::Value* v = random->find("nets")) {
      StatusOr<int> r = v->require_int("nets");
      if (!r.ok()) return r.status();
      nets = *r;
    }
    if (const json::Value* v = random->find("neighbors")) {
      StatusOr<int> r = v->require_int("neighbors");
      if (!r.ok()) return r.status();
      neighbors = *r;
    }
    if (nets < 1 || nets > 1000000)
      return Status::InvalidArgument(
          "load_design: random.nets must be in [1, 1000000]");
    if (limits_.max_design_nets > 0 &&
        static_cast<std::size_t>(nets) > limits_.max_design_nets)
      return Status::InvalidArgument(
          "load_design: " + std::to_string(nets) +
          " nets exceeds the configured limit of " +
          std::to_string(limits_.max_design_nets));
    if (neighbors < 0 || neighbors >= nets)
      return Status::InvalidArgument(
          "load_design: random.neighbors must be in [0, nets)");
    design_ = Design::random(seed, nets, neighbors);
  } else if (const json::Value* files = spec->find("spef_files")) {
    if (!files->is_array())
      return Status::InvalidArgument(
          "load_design: spef_files must be an array of paths");
    std::vector<std::string> paths;
    for (const json::Value& f : files->as_array()) {
      StatusOr<std::string> p = f.require_string("spef_files entry");
      if (!p.ok()) return p.status();
      paths.push_back(std::move(*p));
    }
    StatusOr<Design> loaded = Design::from_spef_files(paths);
    if (!loaded.ok()) return loaded.status();
    if (limits_.max_design_nets > 0 &&
        loaded->num_nets() > limits_.max_design_nets)
      return Status::InvalidArgument(
          "load_design: " + std::to_string(loaded->num_nets()) +
          " nets exceeds the configured limit of " +
          std::to_string(limits_.max_design_nets));
    design_ = std::move(*loaded);
  } else {
    return Status::InvalidArgument(
        "load_design: design needs \"random\" or \"spef_files\"");
  }

  rebind_design();
  result["nets"] = design_.num_nets();
  result["victims"] = victims_.size();
  result["couplings"] = design_.num_couplings();
  return Status::Ok();
}

Status Session::verb_update_net(const json::Value& req,
                                json::Object& result) {
  if (!has_design_)
    return Status::FailedPrecondition("update_net: no design loaded");
  StatusOr<std::string> name = required_string(req, "net");
  if (!name.ok()) return name.status();
  StatusOr<int> idx = design_.find(*name);
  if (!idx.ok()) return idx.status();

  double scale_r = 1.0, scale_c = 1.0;
  if (const json::Value* v = req.find("scale_r")) {
    StatusOr<double> r = v->require_number("scale_r");
    if (!r.ok()) return r.status();
    scale_r = *r;
  }
  if (const json::Value* v = req.find("scale_c")) {
    StatusOr<double> r = v->require_number("scale_c");
    if (!r.ok()) return r.status();
    scale_c = *r;
  }
  Status s = design_.scale_net(*idx, scale_r, scale_c);
  if (!s.ok()) return s;
  result["net"] = *name;
  invalidate(*idx, result);
  return Status::Ok();
}

Status Session::verb_update_driver(const json::Value& req,
                                   json::Object& result) {
  if (!has_design_)
    return Status::FailedPrecondition("update_driver: no design loaded");
  StatusOr<std::string> name = required_string(req, "net");
  if (!name.ok()) return name.status();
  StatusOr<int> idx = design_.find(*name);
  if (!idx.ok()) return idx.status();

  const json::Value* size_v = req.find("size");
  if (!size_v)
    return Status::InvalidArgument("update_driver: missing \"size\"");
  StatusOr<double> size = size_v->require_number("size");
  if (!size.ok()) return size.status();
  Status s = design_.set_driver_size(*idx, *size);
  if (!s.ok()) return s;
  result["net"] = *name;
  invalidate(*idx, result);
  return Status::Ok();
}

Status Session::verb_analyze(const json::Value& req, json::Object& result,
                             Admission admission) {
  if (!has_design_)
    return Status::FailedPrecondition("analyze: no design loaded");
  const bool degraded = admission == Admission::kDegrade;
  const auto wd_start = std::chrono::steady_clock::now();

  std::vector<std::size_t> dirty_idx;
  for (std::size_t o = 0; o < dirty_.size(); ++o)
    if (dirty_[o]) dirty_idx.push_back(o);

  if (!dirty_idx.empty()) {
    std::vector<CoupledNet> nets;
    std::vector<std::string> names;
    nets.reserve(dirty_idx.size());
    for (const std::size_t o : dirty_idx) {
      const int net_index = victims_[o];
      StatusOr<CoupledNet> view = design_.coupled_view(net_index);
      if (!view.ok()) return view.status();
      nets.push_back(std::move(*view));
      names.push_back(design_.net(net_index).name);
    }

    BatchOptions opts = cfg_.batch;
    // The resident caches: tables survive in cache_, reductions are
    // content-addressed so edited nets never see stale ones.
    opts.analyzer.engine.reduction_cache = &reductions_;
    if (degraded) {
      // Soft-pressure rung: Thevenin holding instead of the Rtr
      // iteration. The recomputed victims STAY dirty so full fidelity
      // returns with the next unloaded analyze.
      opts.analyzer.analysis.use_transient_holding = false;
    }
    if (const json::Value* dl = req.find("deadline_ms")) {
      StatusOr<double> r = dl->require_number("deadline_ms");
      if (!r.ok()) return r.status();
      opts.deadline_ms = *r;
    }
    // Cooperative watchdog: a stuck request cannot be preempted, but it
    // CAN be bounded — the engine's own deadline machinery aborts nets
    // past min(request deadline, watchdog).
    if (durability_.watchdog_ms > 0)
      opts.deadline_ms = opts.deadline_ms > 0
                             ? std::min(opts.deadline_ms,
                                        durability_.watchdog_ms)
                             : durability_.watchdog_ms;
    // Per-request deterministic chaos: install the spec for this run
    // only (replacing any process-level spec; cleared after).
    FaultGuard fault_guard;
    if (const json::Value* fs = req.find("inject_faults")) {
      StatusOr<std::string> spec_str = fs->require_string("inject_faults");
      if (!spec_str.ok()) return spec_str.status();
      StatusOr<fault::FaultSpec> spec = fault::parse_fault_spec(*spec_str);
      if (!spec.ok()) return spec.status();
      std::uint64_t seed = 1;
      if (const json::Value* sv = req.find("fault_seed")) {
        StatusOr<int> r = sv->require_int("fault_seed");
        if (!r.ok()) return r.status();
        seed = static_cast<std::uint64_t>(*r);
      }
      fault::install(*spec, seed);
      fault_guard.active = true;
    }

    BatchAnalyzer engine(opts, cache_);
    BatchResult br = engine.analyze(nets, names);

    for (std::size_t p = 0; p < dirty_idx.size(); ++p) {
      const std::size_t o = dirty_idx[p];
      br.nets[p].index = o;
      // A net that ran out of deadline or hit a transient fault stays
      // dirty: the stored slot records the failure honestly, and the
      // next analyze retries it instead of serving the failure forever.
      const Status& ns = br.nets[p].status;
      const bool retry_later =
          !ns.ok() && (ns.code() == StatusCode::kDeadlineExceeded ||
                       ns.is_transient());
      slots_[o] = std::move(br.nets[p]);
      dirty_[o] = degraded || retry_later;
    }
    ++analyze_runs_;
    nets_reanalyzed_ += dirty_idx.size();

    // Watchdog trip: the work is bounded by the deadline above, but the
    // REQUEST still overran its budget — answer kDeadlineExceeded (the
    // aborted victims are still dirty, so a later analyze finishes the
    // job) and journal the incident so the stall survives a crash.
    if (durability_.watchdog_ms > 0) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - wd_start)
              .count();
      if (elapsed_ms > durability_.watchdog_ms) {
        ++watchdog_trips_;
        if (journal_.is_open()) {
          json::Object incident;
          incident["verb"] = "analyze";
          incident["watchdog_ms"] = durability_.watchdog_ms;
          incident["elapsed_ms"] = elapsed_ms;
          (void)journal_.append_incident(++seq_,
                                         json::Value(std::move(incident)));
        }
        return Status::DeadlineExceeded(
            "analyze: watchdog tripped after " + std::to_string(elapsed_ms) +
            " ms (limit " + std::to_string(durability_.watchdog_ms) + " ms)");
      }
    }
  }

  // Assemble the FULL design's report from the stored slots — identical
  // bytes whether the slots were just computed or carried over. The
  // shared finalizer keeps the ranking/stat rules in lockstep with the
  // one-shot batch path; dirty nets re-entered the ladder at Tier 0
  // above, so their provenance is current.
  BatchResult assembled;
  assembled.nets = slots_;
  finalize_batch_result(assembled, cfg_.batch.top_k,
                        cfg_.batch.ladder.enabled);

  StatusOr<json::Value> report = json::parse(assembled.to_json());
  if (!report.ok())
    return Status::Internal("analyze: batch report round-trip failed: " +
                            report.status().message());
  result["reanalyzed"] = dirty_idx.size();
  if (degraded) result["admission_degraded"] = true;
  result["report"] = *report;
  return Status::Ok();
}

Status Session::verb_config(const json::Value& req, json::Object& result) {
  if (const json::Value* set = req.find("set")) {
    const std::string before = analysis_fingerprint(cfg_);
    Status s = cfg_.apply(*set);
    if (!s.ok()) return s;
    // Scheduling keys (jobs, retries, top_k...) don't change results;
    // analysis keys do — and stale slots must not masquerade as current.
    if (analysis_fingerprint(cfg_) != before) mark_all_dirty();
  }
  result["config"] = cfg_.to_json();
  return Status::Ok();
}

Status Session::verb_stats(json::Object& result) {
  result["uptime_s"] = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  result["requests"] = requests_;
  result["errors"] = errors_;
  result["shed"] = shed_;
  result["degraded_admission"] = degraded_admission_;
  result["analyze_runs"] = analyze_runs_;
  result["nets_reanalyzed"] = nets_reanalyzed_;
  result["design_loaded"] = has_design_;
  if (has_design_) {
    result["nets"] = design_.num_nets();
    result["victims"] = victims_.size();
    result["couplings"] = design_.num_couplings();
    std::size_t dirty = 0;
    for (const bool d : dirty_) dirty += d ? 1 : 0;
    result["dirty"] = dirty;
  }
  json::Object cache;
  cache["tables"] = cache_->tables_cached();
  cache["hits"] = cache_->hits();
  cache["misses"] = cache_->misses();
  cache["contention_waits"] = cache_->contention_waits();
  result["characterization_cache"] = json::Value(std::move(cache));
  json::Object red;
  red["entries"] = reductions_.size();
  red["hits"] = reductions_.hits();
  red["misses"] = reductions_.misses();
  result["reduction_cache"] = json::Value(std::move(red));
  json::Object dur;
  dur["enabled"] = journal_.is_open();
  if (journal_.is_open()) dur["state_dir"] = durability_.state_dir;
  dur["seq"] = seq_;
  dur["mutations_since_snapshot"] = mutations_since_snapshot_;
  dur["snapshots"] = snapshots_;
  dur["snapshot_failures"] = snapshot_failures_;
  dur["watchdog_trips"] = watchdog_trips_;
  dur["recovered"] = recovered_;
  dur["replayed"] = replayed_;
  dur["torn_tail_discarded"] = torn_tail_discarded_;
  dur["warmup"] = warmup_;
  dur["warmup_promotions"] = warmup_promotions_;
  result["durability"] = json::Value(std::move(dur));
  // The full dn::obs registry, when the process was started with
  // metrics on (--profile/--metrics-json): the daemon's observability
  // story is the same one batch mode has.
  if (obs::metrics_enabled()) {
    std::ostringstream os;
    obs::metrics().write_json(os);
    StatusOr<json::Value> metrics = json::parse(os.str());
    if (metrics.ok()) result["metrics"] = *metrics;
  }
  return Status::Ok();
}

Status Session::verb_save_cache(const json::Value& req,
                                json::Object& result) {
  StatusOr<std::string> path = required_string(req, "path");
  if (!path.ok()) return path.status();
  Status s = cache_->save_file(*path);
  if (!s.ok()) return s;
  result["path"] = *path;
  result["tables"] = cache_->tables_cached();
  return Status::Ok();
}

Status Session::verb_load_cache(const json::Value& req,
                                json::Object& result) {
  StatusOr<std::string> path = required_string(req, "path");
  if (!path.ok()) return path.status();
  StatusOr<std::size_t> loaded = cache_->load_file(*path);
  if (!loaded.ok()) return loaded.status();
  result["path"] = *path;
  result["tables_loaded"] = *loaded;
  return Status::Ok();
}

}  // namespace dn::server
