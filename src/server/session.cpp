#include "server/session.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "clarinet/report.hpp"
#include "util/fault_injection.hpp"
#include "util/metrics.hpp"

namespace dn::server {

namespace {

/// The config keys that change ANALYSIS RESULTS (as opposed to
/// scheduling: jobs, retries, deadlines, ranking depth). A config change
/// dirties every victim iff this fingerprint changes.
std::string analysis_fingerprint(const AnalysisConfig& cfg) {
  const json::Value all = cfg.to_json();
  static constexpr const char* kKeys[] = {
      "screen_below_ps",   "screen_vn_below_v",
      "fidelity_ladder",   "fidelity_threshold_ps",
      "fidelity_margin",   "fidelity_max_tier",
      "window_pruning",
      "exhaustive",        "thevenin",
      "prereduce",         "solver",
      "dt_ps",             "horizon_ns",
      "model_alignment_iterations", "rtr_max_iterations",
      "newton_max_iterations",      "newton_v_tol"};
  json::Object subset;
  for (const char* key : kKeys)
    if (const json::Value* v = all.find(key)) subset[key] = *v;
  return json::Value(std::move(subset)).dump();
}

/// Clears a per-request fault spec on every exit path, including the
/// throw-to-Status unwind in handle_line.
struct FaultGuard {
  bool active = false;
  ~FaultGuard() {
    if (active) fault::clear();
  }
};

StatusOr<std::string> required_string(const json::Value& req, const char* key) {
  const json::Value* v = req.find(key);
  if (!v)
    return Status::InvalidArgument(std::string("request missing \"") + key +
                                   "\"");
  return v->require_string(key);
}

}  // namespace

Session::Session(AnalysisConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(std::make_shared<CharacterizationCache>(
          cfg_.batch.analyzer.table_spec)) {}

json::Value Session::respond(const json::Value* id, Status status,
                             json::Object result) const {
  json::Object o;
  o["schema_version"] = kReportSchemaVersion;
  if (id) o["id"] = *id;
  o["ok"] = status.ok();
  if (status.ok()) {
    o["result"] = json::Value(std::move(result));
  } else {
    json::Object err;
    err["code"] = status_code_name(status.code());
    err["message"] = status.message();
    o["error"] = json::Value(std::move(err));
  }
  return json::Value(std::move(o));
}

json::Value Session::handle_line(const std::string& line,
                                 Admission admission) {
  ++requests_;
  StatusOr<json::Value> parsed = json::parse(line);
  if (!parsed.ok()) {
    ++errors_;
    return respond(nullptr, parsed.status(), {});
  }
  const json::Value* id = parsed->find("id");
  if (shutdown_) {
    // Post-shutdown drain: every remaining pipelined request still gets
    // a response (kUnavailable, ordered) so clients never hang on a
    // missing line.
    ++errors_;
    return respond(id, Status::Unavailable("server is shutting down"), {});
  }
  if (admission == Admission::kShed) {
    ++shed_;
    ++errors_;
    return respond(id,
                   Status::Unavailable(
                       "server overloaded: request shed by admission control"),
                   {});
  }
  if (admission == Admission::kDegrade) ++degraded_admission_;

  Status status;
  json::Object result;
  const json::Value* verb_v = parsed->find("verb");
  StatusOr<std::string> verb =
      verb_v ? verb_v->require_string("verb")
             : StatusOr<std::string>(
                   Status::InvalidArgument("request missing \"verb\""));
  if (!verb.ok()) {
    status = verb.status();
  } else {
    // The Status boundary of the whole protocol: a handler bug or a
    // throwing layer below must become a response, never kill the
    // session.
    try {
      if (*verb == "ping") {
        status = Status::Ok();
      } else if (*verb == "load_design") {
        status = verb_load_design(*parsed, result);
      } else if (*verb == "update_net") {
        status = verb_update_net(*parsed, result);
      } else if (*verb == "update_driver") {
        status = verb_update_driver(*parsed, result);
      } else if (*verb == "analyze") {
        status = verb_analyze(*parsed, result, admission);
      } else if (*verb == "config") {
        status = verb_config(*parsed, result);
      } else if (*verb == "stats") {
        status = verb_stats(result);
      } else if (*verb == "save_cache") {
        status = verb_save_cache(*parsed, result);
      } else if (*verb == "load_cache") {
        status = verb_load_cache(*parsed, result);
      } else if (*verb == "shutdown") {
        shutdown_ = true;
        status = Status::Ok();
      } else {
        status =
            Status::InvalidArgument("unknown verb \"" + *verb + "\"");
      }
    } catch (const std::exception& e) {
      status = status_from_exception(e);
    }
  }
  if (!status.ok()) ++errors_;
  return respond(id, status, std::move(result));
}

void Session::rebind_design() {
  victims_ = design_.victims();
  slots_.assign(victims_.size(), BatchNetResult{});
  dirty_.assign(victims_.size(), true);
  has_design_ = true;
}

void Session::mark_all_dirty() {
  std::fill(dirty_.begin(), dirty_.end(), true);
}

void Session::invalidate(int net_index, json::Object& result) {
  json::Array names;
  for (const int v : design_.affected_victims(net_index)) {
    const auto it = std::lower_bound(victims_.begin(), victims_.end(), v);
    if (it == victims_.end() || *it != v) continue;
    dirty_[static_cast<std::size_t>(it - victims_.begin())] = true;
    names.push_back(design_.net(v).name);
  }
  result["invalidated"] = std::move(names);
}

Status Session::verb_load_design(const json::Value& req,
                                 json::Object& result) {
  const json::Value* spec = req.find("design");
  if (!spec || !spec->is_object())
    return Status::InvalidArgument(
        "load_design: missing \"design\" object");

  if (const json::Value* random = spec->find("random")) {
    std::uint64_t seed = 1;
    int nets = 0, neighbors = 2;
    if (const json::Value* v = random->find("seed")) {
      StatusOr<int> r = v->require_int("seed");
      if (!r.ok()) return r.status();
      seed = static_cast<std::uint64_t>(*r);
    }
    if (const json::Value* v = random->find("nets")) {
      StatusOr<int> r = v->require_int("nets");
      if (!r.ok()) return r.status();
      nets = *r;
    }
    if (const json::Value* v = random->find("neighbors")) {
      StatusOr<int> r = v->require_int("neighbors");
      if (!r.ok()) return r.status();
      neighbors = *r;
    }
    if (nets < 1 || nets > 1000000)
      return Status::InvalidArgument(
          "load_design: random.nets must be in [1, 1000000]");
    if (neighbors < 0 || neighbors >= nets)
      return Status::InvalidArgument(
          "load_design: random.neighbors must be in [0, nets)");
    design_ = Design::random(seed, nets, neighbors);
  } else if (const json::Value* files = spec->find("spef_files")) {
    if (!files->is_array())
      return Status::InvalidArgument(
          "load_design: spef_files must be an array of paths");
    std::vector<std::string> paths;
    for (const json::Value& f : files->as_array()) {
      StatusOr<std::string> p = f.require_string("spef_files entry");
      if (!p.ok()) return p.status();
      paths.push_back(std::move(*p));
    }
    StatusOr<Design> loaded = Design::from_spef_files(paths);
    if (!loaded.ok()) return loaded.status();
    design_ = std::move(*loaded);
  } else {
    return Status::InvalidArgument(
        "load_design: design needs \"random\" or \"spef_files\"");
  }

  rebind_design();
  result["nets"] = design_.num_nets();
  result["victims"] = victims_.size();
  result["couplings"] = design_.num_couplings();
  return Status::Ok();
}

Status Session::verb_update_net(const json::Value& req,
                                json::Object& result) {
  if (!has_design_)
    return Status::FailedPrecondition("update_net: no design loaded");
  StatusOr<std::string> name = required_string(req, "net");
  if (!name.ok()) return name.status();
  StatusOr<int> idx = design_.find(*name);
  if (!idx.ok()) return idx.status();

  double scale_r = 1.0, scale_c = 1.0;
  if (const json::Value* v = req.find("scale_r")) {
    StatusOr<double> r = v->require_number("scale_r");
    if (!r.ok()) return r.status();
    scale_r = *r;
  }
  if (const json::Value* v = req.find("scale_c")) {
    StatusOr<double> r = v->require_number("scale_c");
    if (!r.ok()) return r.status();
    scale_c = *r;
  }
  Status s = design_.scale_net(*idx, scale_r, scale_c);
  if (!s.ok()) return s;
  result["net"] = *name;
  invalidate(*idx, result);
  return Status::Ok();
}

Status Session::verb_update_driver(const json::Value& req,
                                   json::Object& result) {
  if (!has_design_)
    return Status::FailedPrecondition("update_driver: no design loaded");
  StatusOr<std::string> name = required_string(req, "net");
  if (!name.ok()) return name.status();
  StatusOr<int> idx = design_.find(*name);
  if (!idx.ok()) return idx.status();

  const json::Value* size_v = req.find("size");
  if (!size_v)
    return Status::InvalidArgument("update_driver: missing \"size\"");
  StatusOr<double> size = size_v->require_number("size");
  if (!size.ok()) return size.status();
  Status s = design_.set_driver_size(*idx, *size);
  if (!s.ok()) return s;
  result["net"] = *name;
  invalidate(*idx, result);
  return Status::Ok();
}

Status Session::verb_analyze(const json::Value& req, json::Object& result,
                             Admission admission) {
  if (!has_design_)
    return Status::FailedPrecondition("analyze: no design loaded");
  const bool degraded = admission == Admission::kDegrade;

  std::vector<std::size_t> dirty_idx;
  for (std::size_t o = 0; o < dirty_.size(); ++o)
    if (dirty_[o]) dirty_idx.push_back(o);

  if (!dirty_idx.empty()) {
    std::vector<CoupledNet> nets;
    std::vector<std::string> names;
    nets.reserve(dirty_idx.size());
    for (const std::size_t o : dirty_idx) {
      const int net_index = victims_[o];
      StatusOr<CoupledNet> view = design_.coupled_view(net_index);
      if (!view.ok()) return view.status();
      nets.push_back(std::move(*view));
      names.push_back(design_.net(net_index).name);
    }

    BatchOptions opts = cfg_.batch;
    // The resident caches: tables survive in cache_, reductions are
    // content-addressed so edited nets never see stale ones.
    opts.analyzer.engine.reduction_cache = &reductions_;
    if (degraded) {
      // Soft-pressure rung: Thevenin holding instead of the Rtr
      // iteration. The recomputed victims STAY dirty so full fidelity
      // returns with the next unloaded analyze.
      opts.analyzer.analysis.use_transient_holding = false;
    }
    if (const json::Value* dl = req.find("deadline_ms")) {
      StatusOr<double> r = dl->require_number("deadline_ms");
      if (!r.ok()) return r.status();
      opts.deadline_ms = *r;
    }
    // Per-request deterministic chaos: install the spec for this run
    // only (replacing any process-level spec; cleared after).
    FaultGuard fault_guard;
    if (const json::Value* fs = req.find("inject_faults")) {
      StatusOr<std::string> spec_str = fs->require_string("inject_faults");
      if (!spec_str.ok()) return spec_str.status();
      StatusOr<fault::FaultSpec> spec = fault::parse_fault_spec(*spec_str);
      if (!spec.ok()) return spec.status();
      std::uint64_t seed = 1;
      if (const json::Value* sv = req.find("fault_seed")) {
        StatusOr<int> r = sv->require_int("fault_seed");
        if (!r.ok()) return r.status();
        seed = static_cast<std::uint64_t>(*r);
      }
      fault::install(*spec, seed);
      fault_guard.active = true;
    }

    BatchAnalyzer engine(opts, cache_);
    BatchResult br = engine.analyze(nets, names);

    for (std::size_t p = 0; p < dirty_idx.size(); ++p) {
      const std::size_t o = dirty_idx[p];
      br.nets[p].index = o;
      slots_[o] = std::move(br.nets[p]);
      if (!degraded) dirty_[o] = false;
    }
    ++analyze_runs_;
    nets_reanalyzed_ += dirty_idx.size();
  }

  // Assemble the FULL design's report from the stored slots — identical
  // bytes whether the slots were just computed or carried over. The
  // shared finalizer keeps the ranking/stat rules in lockstep with the
  // one-shot batch path; dirty nets re-entered the ladder at Tier 0
  // above, so their provenance is current.
  BatchResult assembled;
  assembled.nets = slots_;
  finalize_batch_result(assembled, cfg_.batch.top_k,
                        cfg_.batch.ladder.enabled);

  StatusOr<json::Value> report = json::parse(assembled.to_json());
  if (!report.ok())
    return Status::Internal("analyze: batch report round-trip failed: " +
                            report.status().message());
  result["reanalyzed"] = dirty_idx.size();
  if (degraded) result["admission_degraded"] = true;
  result["report"] = *report;
  return Status::Ok();
}

Status Session::verb_config(const json::Value& req, json::Object& result) {
  if (const json::Value* set = req.find("set")) {
    const std::string before = analysis_fingerprint(cfg_);
    Status s = cfg_.apply(*set);
    if (!s.ok()) return s;
    // Scheduling keys (jobs, retries, top_k...) don't change results;
    // analysis keys do — and stale slots must not masquerade as current.
    if (analysis_fingerprint(cfg_) != before) mark_all_dirty();
  }
  result["config"] = cfg_.to_json();
  return Status::Ok();
}

Status Session::verb_stats(json::Object& result) {
  result["uptime_s"] = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  result["requests"] = requests_;
  result["errors"] = errors_;
  result["shed"] = shed_;
  result["degraded_admission"] = degraded_admission_;
  result["analyze_runs"] = analyze_runs_;
  result["nets_reanalyzed"] = nets_reanalyzed_;
  result["design_loaded"] = has_design_;
  if (has_design_) {
    result["nets"] = design_.num_nets();
    result["victims"] = victims_.size();
    result["couplings"] = design_.num_couplings();
    std::size_t dirty = 0;
    for (const bool d : dirty_) dirty += d ? 1 : 0;
    result["dirty"] = dirty;
  }
  json::Object cache;
  cache["tables"] = cache_->tables_cached();
  cache["hits"] = cache_->hits();
  cache["misses"] = cache_->misses();
  cache["contention_waits"] = cache_->contention_waits();
  result["characterization_cache"] = json::Value(std::move(cache));
  json::Object red;
  red["entries"] = reductions_.size();
  red["hits"] = reductions_.hits();
  red["misses"] = reductions_.misses();
  result["reduction_cache"] = json::Value(std::move(red));
  // The full dn::obs registry, when the process was started with
  // metrics on (--profile/--metrics-json): the daemon's observability
  // story is the same one batch mode has.
  if (obs::metrics_enabled()) {
    std::ostringstream os;
    obs::metrics().write_json(os);
    StatusOr<json::Value> metrics = json::parse(os.str());
    if (metrics.ok()) result["metrics"] = *metrics;
  }
  return Status::Ok();
}

Status Session::verb_save_cache(const json::Value& req,
                                json::Object& result) {
  StatusOr<std::string> path = required_string(req, "path");
  if (!path.ok()) return path.status();
  Status s = cache_->save_file(*path);
  if (!s.ok()) return s;
  result["path"] = *path;
  result["tables"] = cache_->tables_cached();
  return Status::Ok();
}

Status Session::verb_load_cache(const json::Value& req,
                                json::Object& result) {
  StatusOr<std::string> path = required_string(req, "path");
  if (!path.ok()) return path.status();
  StatusOr<std::size_t> loaded = cache_->load_file(*path);
  if (!loaded.ok()) return loaded.status();
  result["path"] = *path;
  result["tables_loaded"] = *loaded;
  return Status::Ok();
}

}  // namespace dn::server
