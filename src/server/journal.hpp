// Write-ahead journal for the resident session's mutations.
//
// Every state-changing request (load_design, update_net, update_driver,
// config-with-set) is journaled BEFORE it is applied: a crash at any
// point leaves the journal a superset of the applied mutations, so
// replaying the journal on top of the last snapshot reconstructs a state
// at least as new as anything a client was ever told about. A journaled
// request that fails validation replays to the identical failure — the
// journal records the REQUEST, not its effect, and the handlers are
// deterministic.
//
// Each record is one JSON document, {"seq":N,"req":{...}} for a
// mutation or {"seq":N,"incident":{...}} for an informational event
// (e.g. a watchdog trip), framed and checksummed by durable::AppendLog.
// Sequence numbers are monotone across the journal AND across
// snapshots: a snapshot carries the seq of the last mutation it covers,
// and replay applies only records with a greater seq — so a crash
// between "snapshot written" and "journal truncated" double-applies
// nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/durable_io.hpp"
#include "util/json.hpp"

namespace dn::server {

class Journal {
 public:
  /// Opens (creating if absent) the journal file for appends.
  Status open(const std::string& path, durable::FsyncPolicy policy);
  bool is_open() const { return log_.is_open(); }

  /// Appends a mutation record. Call BEFORE applying the request.
  Status append_request(std::uint64_t seq, const json::Value& request);

  /// Appends an informational incident record (skipped on replay).
  Status append_incident(std::uint64_t seq, const json::Value& incident);

  /// Empties the journal after a successful snapshot.
  Status truncate();

  void close();

  struct Entry {
    std::uint64_t seq = 0;
    json::Value request;   // Null for incident entries.
    json::Value incident;  // Null for request entries.
    bool is_request() const { return !request.is_null(); }
  };

  struct Replay {
    std::vector<Entry> entries;
    /// True when the file ended in an incomplete or corrupt frame — the
    /// signature of a crash mid-append. Only the torn record is lost;
    /// `valid_bytes` is where the recovering session truncates before
    /// appending anything new.
    bool torn_tail = false;
    std::uint64_t valid_bytes = 0;
  };

  /// Decodes every complete record of a journal file in append order.
  /// kNotFound when the file does not exist; a record whose frame
  /// validates but whose JSON does not ends the scan as a torn tail.
  static StatusOr<Replay> read(const std::string& path);

 private:
  Status append(std::uint64_t seq, const char* kind, const json::Value& body);

  durable::AppendLog log_;
};

}  // namespace dn::server
