#include "server/server.hpp"

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include <cerrno>
#include <cstring>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dn::server {

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void handle_stop_signal(int) { g_stop = 1; }

/// sigaction WITHOUT SA_RESTART: a blocking read/accept returns EINTR
/// instead of resuming, which is how the drain reaches threads parked in
/// the kernel.
void install_stop_handlers() {
  g_stop = 0;
  struct sigaction sa{};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      session_(opts_.config, opts_.durability, opts_.limits) {}

int Server::serve_stream(std::istream& in, std::ostream& out) {
  const Status ds = session_.start_durability();
  if (!ds.ok()) {
    std::fprintf(stderr, "error: %s\n", ds.message().c_str());
    return 1;
  }
  if (opts_.handle_signals) install_stop_handlers();

  struct Item {
    std::string line;
    Admission admission = Admission::kAccept;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Item> queue;
  bool input_done = false;

  // The reader stamps admission AT ENQUEUE TIME: the verdict reflects
  // the backlog the request actually joined, and shed markers ride the
  // same queue as real work, keeping responses in request order.
  std::thread reader([&] {
    std::string line;
    while (!(opts_.handle_signals && g_stop) && std::getline(in, line)) {
      if (line.empty()) continue;
      {
        std::lock_guard<std::mutex> lk(mu);
        Item item;
        item.line = std::move(line);
        if (queue.size() >= opts_.queue_hard_limit)
          item.admission = Admission::kShed;
        else if (queue.size() >= opts_.queue_soft_limit)
          item.admission = Admission::kDegrade;
        queue.push_back(std::move(item));
      }
      cv.notify_one();
      line.clear();
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      input_done = true;
    }
    cv.notify_one();
  });

  // The worker polls the stop flag between requests; the stop signal may
  // have been delivered to THIS thread while the reader sat blocked in
  // read(2), so the drain forwards it — pthread_kill makes the reader's
  // read fail with EINTR, ending its loop.
  bool reader_interrupted = false;
  for (;;) {
    Item item;
    bool have_item = false;
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait_for(lk, std::chrono::milliseconds(100),
                  [&] { return input_done || !queue.empty(); });
      if (!queue.empty()) {
        item = std::move(queue.front());
        queue.pop_front();
        have_item = true;
      } else if (input_done) {
        break;
      }
    }
    if (!have_item) {
      if (opts_.handle_signals && g_stop && !reader_interrupted) {
        reader_interrupted = true;
        ::pthread_kill(reader.native_handle(), SIGTERM);
      }
      continue;
    }
    const json::Value response =
        session_.handle_line(item.line, item.admission);
    response.dump(out);
    out << "\n" << std::flush;
  }
  reader.join();

  // Graceful drain: everything queued got its response; park the state
  // where --recover (or a clean restart) finds it.
  const Status gs = session_.graceful_stop();
  if (!gs.ok()) {
    std::fprintf(stderr, "error: graceful stop: %s\n", gs.message().c_str());
    return 1;
  }
  return out ? 0 : 1;
}

namespace {

bool write_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int Server::serve_unix(const std::string& path) {
  const Status ds = session_.start_durability();
  if (!ds.ok()) {
    std::fprintf(stderr, "error: %s\n", ds.message().c_str());
    return 1;
  }
  if (opts_.handle_signals) install_stop_handlers();

  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "error: bad socket path (empty or > %zu bytes)\n",
                 sizeof(addr.sun_path) - 1);
    return 1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return 1;
  }
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 4) != 0) {
    std::fprintf(stderr, "error: bind/listen %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }

  // One client at a time; the session (design, caches, results) stays
  // warm across connections. Socket mode leans on the kernel socket
  // buffer for backpressure, so requests run at full fidelity.
  while (!session_.shutdown_requested() &&
         !(opts_.handle_signals && g_stop)) {
    const int cfd = ::accept(fd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;  // Stop flag rechecked at loop top.
      std::fprintf(stderr, "error: accept: %s\n", std::strerror(errno));
      break;
    }
    std::string buffer;
    char chunk[4096];
    bool client_open = true;
    while (client_open) {
      const ssize_t n = ::read(cfd, chunk, sizeof(chunk));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) {
          if (opts_.handle_signals && g_stop) break;
          continue;
        }
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos;
      while ((pos = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        if (line.empty()) continue;
        const json::Value response = session_.handle_line(line);
        if (!write_all(cfd, response.dump() + "\n")) {
          client_open = false;
          break;
        }
      }
    }
    ::close(cfd);
  }
  ::close(fd);
  ::unlink(path.c_str());
  const Status gs = session_.graceful_stop();
  if (!gs.ok()) {
    std::fprintf(stderr, "error: graceful stop: %s\n", gs.message().c_str());
    return 1;
  }
  return 0;
}

}  // namespace dn::server
