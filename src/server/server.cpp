#include "server/server.hpp"

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dn::server {

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), session_(opts_.config) {}

int Server::serve_stream(std::istream& in, std::ostream& out) {
  struct Item {
    std::string line;
    Admission admission = Admission::kAccept;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Item> queue;
  bool input_done = false;

  // The reader stamps admission AT ENQUEUE TIME: the verdict reflects
  // the backlog the request actually joined, and shed markers ride the
  // same queue as real work, keeping responses in request order.
  std::thread reader([&] {
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      {
        std::lock_guard<std::mutex> lk(mu);
        Item item;
        item.line = std::move(line);
        if (queue.size() >= opts_.queue_hard_limit)
          item.admission = Admission::kShed;
        else if (queue.size() >= opts_.queue_soft_limit)
          item.admission = Admission::kDegrade;
        queue.push_back(std::move(item));
      }
      cv.notify_one();
      line.clear();
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      input_done = true;
    }
    cv.notify_one();
  });

  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return input_done || !queue.empty(); });
      if (queue.empty()) break;  // input_done and fully drained.
      item = std::move(queue.front());
      queue.pop_front();
    }
    const json::Value response =
        session_.handle_line(item.line, item.admission);
    response.dump(out);
    out << "\n" << std::flush;
  }
  reader.join();
  return out ? 0 : 1;
}

namespace {

bool write_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int Server::serve_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "error: bad socket path (empty or > %zu bytes)\n",
                 sizeof(addr.sun_path) - 1);
    return 1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return 1;
  }
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 4) != 0) {
    std::fprintf(stderr, "error: bind/listen %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }

  // One client at a time; the session (design, caches, results) stays
  // warm across connections. Socket mode leans on the kernel socket
  // buffer for backpressure, so requests run at full fidelity.
  while (!session_.shutdown_requested()) {
    const int cfd = ::accept(fd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "error: accept: %s\n", std::strerror(errno));
      break;
    }
    std::string buffer;
    char chunk[4096];
    bool client_open = true;
    while (client_open) {
      const ssize_t n = ::read(cfd, chunk, sizeof(chunk));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos;
      while ((pos = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        if (line.empty()) continue;
        const json::Value response = session_.handle_line(line);
        if (!write_all(cfd, response.dump() + "\n")) {
          client_open = false;
          break;
        }
      }
    }
    ::close(cfd);
  }
  ::close(fd);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace dn::server
