// Resident analysis session: the daemon's state and request handlers.
//
// One Session outlives every request (and, on the socket transport,
// every connection): it owns the loaded Design, the shared
// CharacterizationCache, the ReductionCache, the last per-victim
// results, and the dirty set that makes re-analysis incremental.
//
// Incremental model (DESIGN.md §11): each victim's analysis depends only
// on its own CoupledNet view — its tree/driver/receiver plus the trees
// and drivers of the nets coupled to it. So an edit of net i invalidates
// exactly Design::affected_victims(i): i itself and the victims i
// appears in as an aggressor. `analyze` re-runs only dirty victims
// through a BatchAnalyzer sharing the resident caches and splices the
// fresh results into the stored slots; because per-net analysis is
// deterministic, the assembled result is byte-identical to a cold full
// run over the same design state.
//
// Protocol: one JSON object per request line; one JSON object per
// response line, always carrying "schema_version", the echoed request
// "id", and "ok". Verbs: ping, load_design, update_net, update_driver,
// analyze, config, stats, save_cache, load_cache, shutdown. Malformed
// input NEVER kills the session — it becomes an ok:false response with a
// Status code name.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clarinet/analysis_config.hpp"
#include "mor/reduction_cache.hpp"
#include "server/design.hpp"
#include "util/json.hpp"

namespace dn::server {

/// Admission-controller verdict for one request, decided at ENQUEUE time
/// (so responses keep request order):
///   kAccept  — run at full fidelity.
///   kDegrade — queue past the soft limit: analyze runs on the cheaper
///              Thevenin-holding rung (rtr_to_rth) and the recomputed
///              victims STAY dirty, so fidelity is restored by the next
///              unloaded analyze.
///   kShed    — queue past the hard limit: fail fast with kUnavailable
///              (transient — clients may retry) without executing.
enum class Admission { kAccept, kDegrade, kShed };

class Session {
 public:
  explicit Session(AnalysisConfig cfg = {});

  /// One request line -> one response object. Never throws.
  json::Value handle_line(const std::string& line,
                          Admission admission = Admission::kAccept);

  /// True once a shutdown request has been handled.
  bool shutdown_requested() const { return shutdown_; }

  const AnalysisConfig& config() const { return cfg_; }

 private:
  json::Value respond(const json::Value* id, Status status,
                      json::Object result) const;

  Status verb_load_design(const json::Value& req, json::Object& result);
  Status verb_update_net(const json::Value& req, json::Object& result);
  Status verb_update_driver(const json::Value& req, json::Object& result);
  Status verb_analyze(const json::Value& req, json::Object& result,
                      Admission admission);
  Status verb_config(const json::Value& req, json::Object& result);
  Status verb_stats(json::Object& result);
  Status verb_save_cache(const json::Value& req, json::Object& result);
  Status verb_load_cache(const json::Value& req, json::Object& result);

  /// Applies an edit's dirty closure for design net `net_index`.
  void invalidate(int net_index, json::Object& result);
  void mark_all_dirty();
  /// Rebuilds victims_/slots_/dirty_ after a design (re)load.
  void rebind_design();

  AnalysisConfig cfg_;
  std::shared_ptr<CharacterizationCache> cache_;
  ReductionCache reductions_;

  bool has_design_ = false;
  Design design_;
  std::vector<int> victims_;          // Ordinal -> design net index.
  std::vector<BatchNetResult> slots_; // Last result per victim ordinal.
  std::vector<bool> dirty_;           // Per victim ordinal.

  bool shutdown_ = false;
  std::uint64_t requests_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t degraded_admission_ = 0;
  std::uint64_t analyze_runs_ = 0;
  std::uint64_t nets_reanalyzed_ = 0;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace dn::server
