// Resident analysis session: the daemon's state and request handlers.
//
// One Session outlives every request (and, on the socket transport,
// every connection): it owns the loaded Design, the shared
// CharacterizationCache, the ReductionCache, the last per-victim
// results, and the dirty set that makes re-analysis incremental.
//
// Incremental model (DESIGN.md §11): each victim's analysis depends only
// on its own CoupledNet view — its tree/driver/receiver plus the trees
// and drivers of the nets coupled to it. So an edit of net i invalidates
// exactly Design::affected_victims(i): i itself and the victims i
// appears in as an aggressor. `analyze` re-runs only dirty victims
// through a BatchAnalyzer sharing the resident caches and splices the
// fresh results into the stored slots; because per-net analysis is
// deterministic, the assembled result is byte-identical to a cold full
// run over the same design state.
//
// Durability model (DESIGN.md §15): with a state directory configured,
// every mutating request (load_design, update_net, update_driver,
// config-with-set) is appended to a write-ahead journal BEFORE it is
// applied, and periodic atomic snapshots capture the materialized state
// and truncate the journal. start_durability() with recover=true
// restores the latest snapshot, replays the journal tail (tolerating a
// torn final record), and marks every victim dirty — the next analyze
// recomputes everything, and determinism makes its report byte-identical
// to what a never-crashed session would serve.
//
// Protocol: one JSON object per request line; one JSON object per
// response line, always carrying "schema_version", the echoed request
// "id", and "ok". Verbs: ping, load_design, update_net, update_driver,
// analyze, config, stats, save_cache, load_cache, snapshot, shutdown.
// Malformed input NEVER kills the session — it becomes an ok:false
// response with a Status code name. Requests exceeding the configured
// size/field-count limits are rejected the same way, before (bytes) or
// immediately after (nodes) parsing.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clarinet/analysis_config.hpp"
#include "mor/reduction_cache.hpp"
#include "server/design.hpp"
#include "server/journal.hpp"
#include "server/snapshot.hpp"
#include "util/json.hpp"

namespace dn::server {

/// Admission-controller verdict for one request, decided at ENQUEUE time
/// (so responses keep request order):
///   kAccept  — run at full fidelity.
///   kDegrade — queue past the soft limit: analyze runs on the cheaper
///              Thevenin-holding rung (rtr_to_rth) and the recomputed
///              victims STAY dirty, so fidelity is restored by the next
///              unloaded analyze.
///   kShed    — queue past the hard limit: fail fast with kUnavailable
///              (transient — clients may retry) without executing.
enum class Admission { kAccept, kDegrade, kShed };

/// Crash-safety knobs. Durability is on iff state_dir is non-empty.
struct DurabilityOptions {
  /// Directory holding snapshot.json, journal.wal, and cache sidecars.
  /// Empty disables journaling, snapshots, and recovery.
  std::string state_dir;
  /// Recover from existing state on start; false wipes any prior state.
  bool recover = false;
  durable::FsyncPolicy fsync = durable::FsyncPolicy::kNone;
  /// Successful mutations between automatic snapshots; 0 = only the
  /// explicit "snapshot" verb and the graceful-stop snapshot.
  std::uint64_t snapshot_every = 32;
  /// Cooperative per-request watchdog [ms]; 0 = off. Caps the analyze
  /// deadline, and an analyze that still overran it answers
  /// kDeadlineExceeded, journals an incident record, and leaves the
  /// unfinished victims dirty for the next attempt.
  double watchdog_ms = 0.0;
};

/// Per-request resource limits on the NDJSON surface; 0 disables a limit.
struct ProtocolLimits {
  std::size_t max_request_bytes = 4u << 20;  // Line length, pre-parse.
  std::size_t max_request_nodes = 262144;    // json::node_count post-parse.
  std::size_t max_design_nets = 1000000;     // load_design size cap.
};

class Session {
 public:
  explicit Session(AnalysisConfig cfg = {}, DurabilityOptions durability = {},
                   ProtocolLimits limits = {});

  /// Opens the journal and, when DurabilityOptions::recover is set,
  /// restores snapshot + journal tail first. Call once before the first
  /// handle_line; a no-op without a state_dir. Errors are fatal to the
  /// server start — a half-recovered session must not serve.
  Status start_durability();

  /// Graceful drain: snapshot the current state (truncating the journal)
  /// and close the journal. No-op without durability.
  Status graceful_stop();

  /// One request line -> one response object. Never throws.
  json::Value handle_line(const std::string& line,
                          Admission admission = Admission::kAccept);

  /// True once a shutdown request has been handled.
  bool shutdown_requested() const { return shutdown_; }

  const AnalysisConfig& config() const { return cfg_; }
  bool recovered() const { return recovered_; }
  std::uint64_t journal_seq() const { return seq_; }
  std::uint64_t watchdog_trips() const { return watchdog_trips_; }

 private:
  json::Value respond(const json::Value* id, Status status,
                      json::Object result) const;

  /// The verb switch shared by live requests and journal replay; owns
  /// the try/catch Status boundary.
  Status dispatch_verb(const std::string& verb, const json::Value& req,
                       json::Object& result, Admission admission);

  Status verb_load_design(const json::Value& req, json::Object& result);
  Status verb_update_net(const json::Value& req, json::Object& result);
  Status verb_update_driver(const json::Value& req, json::Object& result);
  Status verb_analyze(const json::Value& req, json::Object& result,
                      Admission admission);
  Status verb_config(const json::Value& req, json::Object& result);
  Status verb_stats(json::Object& result);
  Status verb_save_cache(const json::Value& req, json::Object& result);
  Status verb_load_cache(const json::Value& req, json::Object& result);
  Status verb_snapshot(json::Object& result);

  /// True when the request mutates session state and must be journaled.
  static bool is_mutation(const std::string& verb, const json::Value& req);

  /// Writes an atomic snapshot and truncates the journal.
  Status snapshot_now();
  Status restore_from_snapshot(const SnapshotData& snap);

  /// Applies an edit's dirty closure for design net `net_index`.
  void invalidate(int net_index, json::Object& result);
  void mark_all_dirty();
  /// Rebuilds victims_/slots_/dirty_ after a design (re)load.
  void rebind_design();

  AnalysisConfig cfg_;
  DurabilityOptions durability_;
  ProtocolLimits limits_;
  std::shared_ptr<CharacterizationCache> cache_;
  ReductionCache reductions_;
  Journal journal_;

  bool has_design_ = false;
  Design design_;
  std::vector<int> victims_;          // Ordinal -> design net index.
  std::vector<BatchNetResult> slots_; // Last result per victim ordinal.
  std::vector<bool> dirty_;           // Per victim ordinal.

  bool shutdown_ = false;
  std::uint64_t requests_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t degraded_admission_ = 0;
  std::uint64_t analyze_runs_ = 0;
  std::uint64_t nets_reanalyzed_ = 0;

  // Durability state. seq_ is monotone across snapshots AND recoveries:
  // a snapshot records the last covered seq, replay skips entries at or
  // below it, and new appends continue from the maximum ever seen.
  std::uint64_t seq_ = 0;
  std::uint64_t mutations_since_snapshot_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t snapshot_failures_ = 0;
  std::uint64_t watchdog_trips_ = 0;
  std::uint64_t replayed_ = 0;
  bool recovered_ = false;
  bool torn_tail_discarded_ = false;
  /// Post-recovery warmup: the first analyze after recovery recomputes
  /// the whole design, so soft-pressure degradation would burn the full
  /// recompute on the cheap rung and leave everything dirty. Until one
  /// analyze succeeds, kDegrade admissions are promoted to kAccept.
  bool warmup_ = false;
  std::uint64_t warmup_promotions_ = 0;

  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace dn::server
