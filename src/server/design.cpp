#include "server/design.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "rcnet/random_nets.hpp"
#include "rcnet/spef.hpp"
#include "util/rng.hpp"

namespace dn::server {

namespace {

GateParams gate_of(GateType type, double size, double vdd) {
  GateParams g;
  g.type = type;
  g.size = size;
  g.vdd = vdd;
  return g;
}

Status bad_index(int i, std::size_t n) {
  return Status::InvalidArgument("design: net index " + std::to_string(i) +
                                 " out of range (have " + std::to_string(n) +
                                 " nets)");
}

}  // namespace

Design Design::random(std::uint64_t seed, int num_nets, int neighbors) {
  Design d;
  Rng rng(seed);
  const RandomNetConfig cfg{};

  // Phase 1: the nets, sampled with the same parameter spread as
  // random_coupled_net's victims. Two-phase generation keeps a net's
  // parameters independent of the coupling topology.
  d.nets_.reserve(static_cast<std::size_t>(num_nets));
  for (int i = 0; i < num_nets; ++i) {
    DesignNet n;
    n.name = "n" + std::to_string(i);
    const int seg = rng.uniform_int(cfg.min_segments, cfg.max_segments);
    n.tree = make_line(seg, rng.log_uniform(cfg.r_total_min, cfg.r_total_max),
                       rng.log_uniform(cfg.c_total_min, cfg.c_total_max));
    n.driver = gate_of(
        GateType::Inverter,
        cfg.victim_sizes[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(cfg.victim_sizes.size()) - 1))],
        cfg.vdd);
    n.receiver = gate_of(
        GateType::Inverter,
        cfg.receiver_sizes[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(cfg.receiver_sizes.size()) - 1))],
        cfg.vdd);
    n.input_slew = rng.uniform(cfg.slew_min, cfg.slew_max);
    n.output_rising = rng.chance(0.5);
    n.receiver_load = rng.log_uniform(cfg.rcv_load_min, cfg.rcv_load_max);
    n.sink_load = rng.uniform(2e-15, 8e-15);
    n.is_victim = true;
    d.nets_.push_back(std::move(n));
  }

  // Phase 2: ring couplings — net i to its `neighbors` successors, caps
  // distributed along the overlap of interior nodes.
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < num_nets; ++i) {
    for (int k = 1; k <= neighbors; ++k) {
      const int j = (i + k) % num_nets;
      if (j == i) continue;
      const auto pair = std::minmax(i, j);
      if (!seen.insert({pair.first, pair.second}).second) continue;
      const double cc_pair =
          d.nets_[static_cast<std::size_t>(i)].tree.total_cap() *
          rng.uniform(0.2, 0.6);
      const int seg_i = d.nets_[static_cast<std::size_t>(i)].tree.num_nodes - 1;
      const int seg_j = d.nets_[static_cast<std::size_t>(j)].tree.num_nodes - 1;
      const int overlap = std::max(1, std::min(seg_i, seg_j));
      for (int t = 1; t <= overlap; ++t)
        d.couplings_.push_back(
            {pair.first, pair.second, t, t, cc_pair / overlap});
    }
  }
  return d;
}

StatusOr<Design> Design::from_spef_files(
    const std::vector<std::string>& paths) {
  Design d;
  for (const auto& path : paths) {
    StatusOr<CoupledNet> loaded = try_read_spef_file(path);
    if (!loaded.ok()) return loaded.status();
    const CoupledNet& cn = *loaded;
    const int base = static_cast<int>(d.nets_.size());

    DesignNet victim;
    victim.name = path;
    victim.tree = cn.victim.net;
    victim.driver = cn.victim.driver;
    victim.receiver = cn.victim.receiver;
    victim.input_slew = cn.victim.input_slew;
    victim.output_rising = cn.victim.output_rising;
    victim.receiver_load = cn.victim.receiver_load;
    victim.is_victim = true;
    d.nets_.push_back(std::move(victim));

    for (std::size_t k = 0; k < cn.aggressors.size(); ++k) {
      const AggressorDesc& agg = cn.aggressors[k];
      DesignNet an;
      an.name = path + "#a" + std::to_string(k);
      an.tree = agg.net;
      an.driver = agg.driver;
      an.input_slew = agg.input_slew;
      an.output_rising = agg.output_rising;
      an.sink_load = agg.sink_load;
      an.is_victim = false;  // Context only: never analyzed itself.
      d.nets_.push_back(std::move(an));
    }
    for (const Coupling& cc : cn.couplings)
      d.couplings_.push_back({base, base + 1 + cc.aggressor, cc.victim_node,
                              cc.aggressor_node, cc.c});
  }
  return d;
}

StatusOr<int> Design::find(const std::string& name) const {
  for (std::size_t i = 0; i < nets_.size(); ++i)
    if (nets_[i].name == name) return static_cast<int>(i);
  return Status::NotFound("design: no net named \"" + name + "\"");
}

std::vector<int> Design::victims() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nets_.size(); ++i)
    if (nets_[i].is_victim) out.push_back(static_cast<int>(i));
  return out;
}

std::vector<int> Design::neighbors(int i) const {
  std::vector<int> out;
  for (const DesignCoupling& cc : couplings_) {
    if (cc.a == i) out.push_back(cc.b);
    if (cc.b == i) out.push_back(cc.a);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int> Design::affected_victims(int i) const {
  std::vector<int> out;
  if (nets_[static_cast<std::size_t>(i)].is_victim) out.push_back(i);
  for (const int j : neighbors(i))
    if (nets_[static_cast<std::size_t>(j)].is_victim) out.push_back(j);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

StatusOr<CoupledNet> Design::coupled_view(int i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= nets_.size())
    return bad_index(i, nets_.size());
  const DesignNet& v = nets_[static_cast<std::size_t>(i)];

  CoupledNet cn;
  cn.victim.net = v.tree;
  cn.victim.driver = v.driver;
  cn.victim.receiver = v.receiver;
  cn.victim.input_slew = v.input_slew;
  cn.victim.output_rising = v.output_rising;
  cn.victim.receiver_load = v.receiver_load;

  const std::vector<int> nbrs = neighbors(i);
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    const DesignNet& an = nets_[static_cast<std::size_t>(nbrs[k])];
    AggressorDesc agg;
    agg.net = an.tree;
    agg.driver = an.driver;
    agg.input_slew = an.input_slew;
    // Policy, not stored state: aggressors oppose the victim — the
    // delay-increasing worst case.
    agg.output_rising = !v.output_rising;
    agg.sink_load = an.sink_load;
    cn.aggressors.push_back(std::move(agg));
  }
  for (const DesignCoupling& cc : couplings_) {
    int other = -1, victim_node = 0, aggressor_node = 0;
    if (cc.a == i) {
      other = cc.b;
      victim_node = cc.a_node;
      aggressor_node = cc.b_node;
    } else if (cc.b == i) {
      other = cc.a;
      victim_node = cc.b_node;
      aggressor_node = cc.a_node;
    } else {
      continue;
    }
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), other);
    cn.couplings.push_back({static_cast<int>(it - nbrs.begin()),
                            aggressor_node, victim_node, cc.c});
  }
  try {
    cn.validate();
  } catch (const std::exception& e) {
    return Status::InvalidArgument("design: net \"" + v.name +
                                   "\" has an inconsistent view: " + e.what());
  }
  return cn;
}

Status Design::scale_net(int i, double scale_r, double scale_c) {
  if (i < 0 || static_cast<std::size_t>(i) >= nets_.size())
    return bad_index(i, nets_.size());
  if (!(std::isfinite(scale_r) && scale_r > 0) ||
      !(std::isfinite(scale_c) && scale_c > 0))
    return Status::InvalidArgument(
        "design: scale factors must be finite and > 0");
  RcTree& tree = nets_[static_cast<std::size_t>(i)].tree;
  for (NetRes& r : tree.res) r.r *= scale_r;
  for (NetCap& c : tree.caps) c.c *= scale_c;
  return Status::Ok();
}

Status Design::set_driver_size(int i, double size) {
  if (i < 0 || static_cast<std::size_t>(i) >= nets_.size())
    return bad_index(i, nets_.size());
  if (!(std::isfinite(size) && size > 0))
    return Status::InvalidArgument("design: driver size must be > 0");
  nets_[static_cast<std::size_t>(i)].driver.size = size;
  return Status::Ok();
}

}  // namespace dn::server
