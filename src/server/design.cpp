#include "server/design.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "rcnet/random_nets.hpp"
#include "rcnet/spef.hpp"
#include "util/rng.hpp"

namespace dn::server {

namespace {

GateParams gate_of(GateType type, double size, double vdd) {
  GateParams g;
  g.type = type;
  g.size = size;
  g.vdd = vdd;
  return g;
}

Status bad_index(int i, std::size_t n) {
  return Status::InvalidArgument("design: net index " + std::to_string(i) +
                                 " out of range (have " + std::to_string(n) +
                                 " nets)");
}

}  // namespace

Design Design::random(std::uint64_t seed, int num_nets, int neighbors) {
  Design d;
  Rng rng(seed);
  const RandomNetConfig cfg{};

  // Phase 1: the nets, sampled with the same parameter spread as
  // random_coupled_net's victims. Two-phase generation keeps a net's
  // parameters independent of the coupling topology.
  d.nets_.reserve(static_cast<std::size_t>(num_nets));
  for (int i = 0; i < num_nets; ++i) {
    DesignNet n;
    n.name = "n" + std::to_string(i);
    const int seg = rng.uniform_int(cfg.min_segments, cfg.max_segments);
    n.tree = make_line(seg, rng.log_uniform(cfg.r_total_min, cfg.r_total_max),
                       rng.log_uniform(cfg.c_total_min, cfg.c_total_max));
    n.driver = gate_of(
        GateType::Inverter,
        cfg.victim_sizes[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(cfg.victim_sizes.size()) - 1))],
        cfg.vdd);
    n.receiver = gate_of(
        GateType::Inverter,
        cfg.receiver_sizes[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(cfg.receiver_sizes.size()) - 1))],
        cfg.vdd);
    n.input_slew = rng.uniform(cfg.slew_min, cfg.slew_max);
    n.output_rising = rng.chance(0.5);
    n.receiver_load = rng.log_uniform(cfg.rcv_load_min, cfg.rcv_load_max);
    n.sink_load = rng.uniform(2e-15, 8e-15);
    n.is_victim = true;
    d.nets_.push_back(std::move(n));
  }

  // Phase 2: ring couplings — net i to its `neighbors` successors, caps
  // distributed along the overlap of interior nodes.
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < num_nets; ++i) {
    for (int k = 1; k <= neighbors; ++k) {
      const int j = (i + k) % num_nets;
      if (j == i) continue;
      const auto pair = std::minmax(i, j);
      if (!seen.insert({pair.first, pair.second}).second) continue;
      const double cc_pair =
          d.nets_[static_cast<std::size_t>(i)].tree.total_cap() *
          rng.uniform(0.2, 0.6);
      const int seg_i = d.nets_[static_cast<std::size_t>(i)].tree.num_nodes - 1;
      const int seg_j = d.nets_[static_cast<std::size_t>(j)].tree.num_nodes - 1;
      const int overlap = std::max(1, std::min(seg_i, seg_j));
      for (int t = 1; t <= overlap; ++t)
        d.couplings_.push_back(
            {pair.first, pair.second, t, t, cc_pair / overlap});
    }
  }
  return d;
}

StatusOr<Design> Design::from_spef_files(
    const std::vector<std::string>& paths) {
  Design d;
  for (const auto& path : paths) {
    StatusOr<CoupledNet> loaded = try_read_spef_file(path);
    if (!loaded.ok()) return loaded.status();
    const CoupledNet& cn = *loaded;
    const int base = static_cast<int>(d.nets_.size());

    DesignNet victim;
    victim.name = path;
    victim.tree = cn.victim.net;
    victim.driver = cn.victim.driver;
    victim.receiver = cn.victim.receiver;
    victim.input_slew = cn.victim.input_slew;
    victim.output_rising = cn.victim.output_rising;
    victim.receiver_load = cn.victim.receiver_load;
    victim.is_victim = true;
    d.nets_.push_back(std::move(victim));

    for (std::size_t k = 0; k < cn.aggressors.size(); ++k) {
      const AggressorDesc& agg = cn.aggressors[k];
      DesignNet an;
      an.name = path + "#a" + std::to_string(k);
      an.tree = agg.net;
      an.driver = agg.driver;
      an.input_slew = agg.input_slew;
      an.output_rising = agg.output_rising;
      an.sink_load = agg.sink_load;
      an.is_victim = false;  // Context only: never analyzed itself.
      d.nets_.push_back(std::move(an));
    }
    for (const Coupling& cc : cn.couplings)
      d.couplings_.push_back({base, base + 1 + cc.aggressor, cc.victim_node,
                              cc.aggressor_node, cc.c});
  }
  return d;
}

StatusOr<int> Design::find(const std::string& name) const {
  for (std::size_t i = 0; i < nets_.size(); ++i)
    if (nets_[i].name == name) return static_cast<int>(i);
  return Status::NotFound("design: no net named \"" + name + "\"");
}

std::vector<int> Design::victims() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nets_.size(); ++i)
    if (nets_[i].is_victim) out.push_back(static_cast<int>(i));
  return out;
}

std::vector<int> Design::neighbors(int i) const {
  std::vector<int> out;
  for (const DesignCoupling& cc : couplings_) {
    if (cc.a == i) out.push_back(cc.b);
    if (cc.b == i) out.push_back(cc.a);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int> Design::affected_victims(int i) const {
  std::vector<int> out;
  if (nets_[static_cast<std::size_t>(i)].is_victim) out.push_back(i);
  for (const int j : neighbors(i))
    if (nets_[static_cast<std::size_t>(j)].is_victim) out.push_back(j);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

StatusOr<CoupledNet> Design::coupled_view(int i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= nets_.size())
    return bad_index(i, nets_.size());
  const DesignNet& v = nets_[static_cast<std::size_t>(i)];

  CoupledNet cn;
  cn.victim.net = v.tree;
  cn.victim.driver = v.driver;
  cn.victim.receiver = v.receiver;
  cn.victim.input_slew = v.input_slew;
  cn.victim.output_rising = v.output_rising;
  cn.victim.receiver_load = v.receiver_load;

  const std::vector<int> nbrs = neighbors(i);
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    const DesignNet& an = nets_[static_cast<std::size_t>(nbrs[k])];
    AggressorDesc agg;
    agg.net = an.tree;
    agg.driver = an.driver;
    agg.input_slew = an.input_slew;
    // Policy, not stored state: aggressors oppose the victim — the
    // delay-increasing worst case.
    agg.output_rising = !v.output_rising;
    agg.sink_load = an.sink_load;
    cn.aggressors.push_back(std::move(agg));
  }
  for (const DesignCoupling& cc : couplings_) {
    int other = -1, victim_node = 0, aggressor_node = 0;
    if (cc.a == i) {
      other = cc.b;
      victim_node = cc.a_node;
      aggressor_node = cc.b_node;
    } else if (cc.b == i) {
      other = cc.a;
      victim_node = cc.b_node;
      aggressor_node = cc.a_node;
    } else {
      continue;
    }
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), other);
    cn.couplings.push_back({static_cast<int>(it - nbrs.begin()),
                            aggressor_node, victim_node, cc.c});
  }
  try {
    cn.validate();
  } catch (const std::exception& e) {
    return Status::InvalidArgument("design: net \"" + v.name +
                                   "\" has an inconsistent view: " + e.what());
  }
  return cn;
}

Status Design::scale_net(int i, double scale_r, double scale_c) {
  if (i < 0 || static_cast<std::size_t>(i) >= nets_.size())
    return bad_index(i, nets_.size());
  if (!(std::isfinite(scale_r) && scale_r > 0) ||
      !(std::isfinite(scale_c) && scale_c > 0))
    return Status::InvalidArgument(
        "design: scale factors must be finite and > 0");
  RcTree& tree = nets_[static_cast<std::size_t>(i)].tree;
  for (NetRes& r : tree.res) r.r *= scale_r;
  for (NetCap& c : tree.caps) c.c *= scale_c;
  return Status::Ok();
}

Status Design::set_driver_size(int i, double size) {
  if (i < 0 || static_cast<std::size_t>(i) >= nets_.size())
    return bad_index(i, nets_.size());
  if (!(std::isfinite(size) && size > 0))
    return Status::InvalidArgument("design: driver size must be > 0");
  nets_[static_cast<std::size_t>(i)].driver.size = size;
  return Status::Ok();
}

namespace {

json::Value mosfet_to_json(const MosfetParams& p) {
  json::Array a;
  a.emplace_back(static_cast<int>(p.type));
  a.emplace_back(p.w);
  a.emplace_back(p.l);
  a.emplace_back(p.vt);
  a.emplace_back(p.kp);
  a.emplace_back(p.lambda);
  a.emplace_back(p.cg_per_m);
  a.emplace_back(p.cj_per_m);
  return json::Value(std::move(a));
}

Status mosfet_from_json(const json::Value& v, MosfetParams& out,
                        const char* what) {
  if (!v.is_array() || v.as_array().size() != 8)
    return Status::InvalidArgument(std::string(what) +
                                   " must be an 8-element array");
  const json::Array& a = v.as_array();
  for (const json::Value& e : a)
    if (!e.is_number())
      return Status::InvalidArgument(std::string(what) +
                                     " elements must be numbers");
  out.type = static_cast<MosType>(static_cast<int>(a[0].as_number()));
  out.w = a[1].as_number();
  out.l = a[2].as_number();
  out.vt = a[3].as_number();
  out.kp = a[4].as_number();
  out.lambda = a[5].as_number();
  out.cg_per_m = a[6].as_number();
  out.cj_per_m = a[7].as_number();
  return Status::Ok();
}

json::Value gate_to_json(const GateParams& g) {
  json::Object o;
  o["type"] = static_cast<int>(g.type);
  o["size"] = g.size;
  o["vdd"] = g.vdd;
  o["wn_unit"] = g.wn_unit;
  o["wp_unit"] = g.wp_unit;
  o["nmos"] = mosfet_to_json(g.nmos_proto);
  o["pmos"] = mosfet_to_json(g.pmos_proto);
  return json::Value(std::move(o));
}

Status gate_from_json(const json::Value& v, GateParams& out,
                      const char* what) {
  if (!v.is_object())
    return Status::InvalidArgument(std::string(what) + " must be an object");
  const json::Value* f = v.find("type");
  StatusOr<int> type = f ? f->require_int("gate type") : StatusOr<int>(
      Status::InvalidArgument(std::string(what) + " missing type"));
  if (!type.ok()) return type.status();
  if (*type < 0 || *type > static_cast<int>(GateType::Nor2))
    return Status::InvalidArgument(std::string(what) + " has unknown type");
  out.type = static_cast<GateType>(*type);
  const struct { const char* key; double* dst; } nums[] = {
      {"size", &out.size},
      {"vdd", &out.vdd},
      {"wn_unit", &out.wn_unit},
      {"wp_unit", &out.wp_unit},
  };
  for (const auto& [key, dst] : nums) {
    const json::Value* n = v.find(key);
    if (!n)
      return Status::InvalidArgument(std::string(what) + " missing " + key);
    StatusOr<double> d = n->require_number(key);
    if (!d.ok()) return d.status();
    *dst = *d;
  }
  const json::Value* nm = v.find("nmos");
  const json::Value* pm = v.find("pmos");
  if (!nm || !pm)
    return Status::InvalidArgument(std::string(what) +
                                   " missing mosfet prototypes");
  Status s = mosfet_from_json(*nm, out.nmos_proto, "nmos");
  if (!s.ok()) return s;
  return mosfet_from_json(*pm, out.pmos_proto, "pmos");
}

json::Value tree_to_json(const RcTree& t) {
  json::Object o;
  o["num_nodes"] = t.num_nodes;
  o["sink"] = t.sink;
  json::Array res;
  for (const NetRes& r : t.res) {
    json::Array e;
    e.emplace_back(r.a);
    e.emplace_back(r.b);
    e.emplace_back(r.r);
    res.emplace_back(std::move(e));
  }
  o["res"] = json::Value(std::move(res));
  json::Array caps;
  for (const NetCap& c : t.caps) {
    json::Array e;
    e.emplace_back(c.node);
    e.emplace_back(c.c);
    caps.emplace_back(std::move(e));
  }
  o["caps"] = json::Value(std::move(caps));
  return json::Value(std::move(o));
}

Status tree_from_json(const json::Value& v, RcTree& out) {
  if (!v.is_object())
    return Status::InvalidArgument("tree must be an object");
  const json::Value* nn = v.find("num_nodes");
  const json::Value* sink = v.find("sink");
  const json::Value* res = v.find("res");
  const json::Value* caps = v.find("caps");
  if (!nn || !sink || !res || !caps || !res->is_array() || !caps->is_array())
    return Status::InvalidArgument("tree missing num_nodes/sink/res/caps");
  StatusOr<int> n = nn->require_int("num_nodes");
  if (!n.ok()) return n.status();
  StatusOr<int> s = sink->require_int("sink");
  if (!s.ok()) return s.status();
  out.num_nodes = *n;
  out.sink = *s;
  out.res.clear();
  for (const json::Value& e : res->as_array()) {
    if (!e.is_array() || e.as_array().size() != 3 ||
        !e.as_array()[0].is_number() || !e.as_array()[1].is_number() ||
        !e.as_array()[2].is_number())
      return Status::InvalidArgument("tree res entries must be [a,b,r]");
    const json::Array& a = e.as_array();
    out.res.push_back({static_cast<int>(a[0].as_number()),
                       static_cast<int>(a[1].as_number()), a[2].as_number()});
  }
  out.caps.clear();
  for (const json::Value& e : caps->as_array()) {
    if (!e.is_array() || e.as_array().size() != 2 ||
        !e.as_array()[0].is_number() || !e.as_array()[1].is_number())
      return Status::InvalidArgument("tree caps entries must be [node,c]");
    const json::Array& a = e.as_array();
    out.caps.push_back(
        {static_cast<int>(a[0].as_number()), a[1].as_number()});
  }
  return Status::Ok();
}

}  // namespace

json::Value Design::to_json() const {
  json::Object doc;
  json::Array nets;
  for (const DesignNet& n : nets_) {
    json::Object o;
    o["name"] = n.name;
    o["tree"] = tree_to_json(n.tree);
    o["driver"] = gate_to_json(n.driver);
    o["receiver"] = gate_to_json(n.receiver);
    o["input_slew"] = n.input_slew;
    o["output_rising"] = n.output_rising;
    o["receiver_load"] = n.receiver_load;
    o["sink_load"] = n.sink_load;
    o["is_victim"] = n.is_victim;
    nets.emplace_back(std::move(o));
  }
  doc["nets"] = json::Value(std::move(nets));
  json::Array couplings;
  for (const DesignCoupling& cc : couplings_) {
    json::Array e;
    e.emplace_back(cc.a);
    e.emplace_back(cc.b);
    e.emplace_back(cc.a_node);
    e.emplace_back(cc.b_node);
    e.emplace_back(cc.c);
    couplings.emplace_back(std::move(e));
  }
  doc["couplings"] = json::Value(std::move(couplings));
  return json::Value(std::move(doc));
}

StatusOr<Design> Design::from_json(const json::Value& v) {
  if (!v.is_object())
    return Status::InvalidArgument("design document must be an object");
  const json::Value* nets = v.find("nets");
  const json::Value* couplings = v.find("couplings");
  if (!nets || !nets->is_array() || !couplings || !couplings->is_array())
    return Status::InvalidArgument(
        "design document missing nets/couplings arrays");

  Design d;
  for (const json::Value& nv : nets->as_array()) {
    if (!nv.is_object())
      return Status::InvalidArgument("design net must be an object");
    DesignNet n;
    const json::Value* name = nv.find("name");
    if (!name)
      return Status::InvalidArgument("design net missing name");
    StatusOr<std::string> ns = name->require_string("net name");
    if (!ns.ok()) return ns.status();
    n.name = std::move(*ns);

    const json::Value* tree = nv.find("tree");
    if (!tree) return Status::InvalidArgument("design net missing tree");
    Status s = tree_from_json(*tree, n.tree);
    if (!s.ok()) return s;
    const json::Value* driver = nv.find("driver");
    const json::Value* receiver = nv.find("receiver");
    if (!driver || !receiver)
      return Status::InvalidArgument("design net missing driver/receiver");
    s = gate_from_json(*driver, n.driver, "driver");
    if (!s.ok()) return s;
    s = gate_from_json(*receiver, n.receiver, "receiver");
    if (!s.ok()) return s;

    const struct { const char* key; double* dst; } nums[] = {
        {"input_slew", &n.input_slew},
        {"receiver_load", &n.receiver_load},
        {"sink_load", &n.sink_load},
    };
    for (const auto& [key, dst] : nums) {
      const json::Value* f = nv.find(key);
      if (!f)
        return Status::InvalidArgument(std::string("design net missing ") +
                                       key);
      StatusOr<double> num = f->require_number(key);
      if (!num.ok()) return num.status();
      *dst = *num;
    }
    const struct { const char* key; bool* dst; } bools[] = {
        {"output_rising", &n.output_rising},
        {"is_victim", &n.is_victim},
    };
    for (const auto& [key, dst] : bools) {
      const json::Value* f = nv.find(key);
      if (!f)
        return Status::InvalidArgument(std::string("design net missing ") +
                                       key);
      StatusOr<bool> b = f->require_bool(key);
      if (!b.ok()) return b.status();
      *dst = *b;
    }
    d.nets_.push_back(std::move(n));
  }

  for (const json::Value& cv : couplings->as_array()) {
    if (!cv.is_array() || cv.as_array().size() != 5)
      return Status::InvalidArgument(
          "design coupling must be [a,b,a_node,b_node,c]");
    const json::Array& a = cv.as_array();
    for (const json::Value& e : a)
      if (!e.is_number())
        return Status::InvalidArgument(
            "design coupling elements must be numbers");
    DesignCoupling cc;
    cc.a = static_cast<int>(a[0].as_number());
    cc.b = static_cast<int>(a[1].as_number());
    cc.a_node = static_cast<int>(a[2].as_number());
    cc.b_node = static_cast<int>(a[3].as_number());
    cc.c = a[4].as_number();
    const auto n = static_cast<int>(d.nets_.size());
    if (cc.a < 0 || cc.a >= n || cc.b < 0 || cc.b >= n)
      return Status::InvalidArgument(
          "design coupling references a net out of range");
    d.couplings_.push_back(cc);
  }
  return d;
}

}  // namespace dn::server
