// Daemon transport: newline-delimited JSON over stdio or a Unix socket.
//
// Stream mode (dnoise_cli --serve) runs TWO threads:
//   - a reader that pulls request lines off the input and stamps each
//     with an admission verdict AT ENQUEUE TIME (depth < soft: accept;
//     < hard: degrade; otherwise shed),
//   - a worker (the calling thread) that executes requests strictly in
//     arrival order against the resident Session.
// Stamping at enqueue keeps the response stream in request order — a
// shed marker travels through the same queue as the work it displaced.
// The loop ends when input is exhausted; after a shutdown verb, every
// remaining and subsequent request is answered kUnavailable without
// executing, so a pipelined script always gets one response per line.
//
// Socket mode accepts one client at a time on a Unix-domain socket; the
// Session persists ACROSS connections (that is the point of a resident
// daemon: reconnect and the design, caches, and results are still warm).
// A shutdown verb ends the accept loop and removes the socket file.
//
// Lifecycle: both transports install SIGTERM/SIGINT handlers (without
// SA_RESTART, so blocking reads return EINTR) and drain gracefully — the
// in-flight request and everything already queued finish and get their
// responses, then the session snapshots (journal truncated) and the
// process exits 0. kill -9 is the crash path the journal exists for.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "server/session.hpp"

namespace dn::server {

struct ServerOptions {
  /// Queue depth at which analyze fidelity degrades (rtr_to_rth rung).
  std::size_t queue_soft_limit = 8;
  /// Queue depth past which requests are shed with kUnavailable.
  std::size_t queue_hard_limit = 64;
  AnalysisConfig config{};
  DurabilityOptions durability{};
  ProtocolLimits limits{};
  /// Install SIGTERM/SIGINT graceful-drain handlers. On by default for
  /// the CLI; tests running a server in-process keep their own handlers.
  bool handle_signals = true;
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});

  /// Serves `in` to `out` until EOF. Returns the process exit code: 0
  /// unless the transport itself failed (protocol errors are responses,
  /// not exit codes).
  int serve_stream(std::istream& in, std::ostream& out);

  /// Binds `path` and serves one connection at a time until a shutdown
  /// verb. Returns the process exit code.
  int serve_unix(const std::string& path);

  Session& session() { return session_; }
  const ServerOptions& options() const { return opts_; }

 private:
  ServerOptions opts_;
  Session session_;
};

}  // namespace dn::server
