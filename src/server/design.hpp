// Resident design model for the analysis daemon.
//
// The per-net analysis flow is victim-centric: a CoupledNet is ONE
// victim's view of the world (its tree, receiver, and the aggressor
// trees coupled to it). A resident server needs the inverse picture — a
// flat set of NETS with coupling EDGES between them — so that a single
// net edit can be mapped to the set of victim views it invalidates: the
// edited net itself plus every victim it appears in as an aggressor.
//
// The Design holds exactly that: nets (each with its driver/receiver
// context) and undirected coupling edges carrying the local node pairs.
// coupled_view(i) lowers net i back into the CoupledNet the analyzers
// consume. Aggressor switching direction is analysis POLICY, not stored
// state: every victim is analyzed against aggressors switching opposite
// to it — the delay-increasing worst case the paper bounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rcnet/net.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace dn::server {

struct DesignNet {
  std::string name;
  RcTree tree;
  GateParams driver;
  GateParams receiver;  // Receiver context when analyzed as victim.
  double input_slew = 100e-12;
  bool output_rising = true;     // Victim transition direction.
  double receiver_load = 20e-15;  // Receiver OUTPUT load (victim role).
  double sink_load = 2e-15;       // Sink pin cap (aggressor role).
  /// False for nets that exist only as aggressor context (e.g. the
  /// aggressors of a loaded SPEF deck): they are never analyzed
  /// themselves but editing them dirties the victims they couple to.
  bool is_victim = true;
};

/// One undirected coupling edge between nets a and b (a < b by
/// convention after normalization), attached at local nodes on each side.
struct DesignCoupling {
  int a = 0, b = 0;
  int a_node = 0, b_node = 0;
  double c = 0.0;
};

class Design {
 public:
  Design() = default;

  /// Synthetic design: `num_nets` random nets (same parameter spread as
  /// random_coupled_net's victims) arranged on a ring where net i couples
  /// to its `neighbors` successors. Every net is a victim, so edits have
  /// real cross-net consequences — the incremental engine's test bed.
  static Design random(std::uint64_t seed, int num_nets, int neighbors);

  /// Loads SPEF decks as disconnected islands: each file contributes its
  /// victim (as an analyzable net) and its aggressors (context-only nets)
  /// plus the file's coupling edges.
  static StatusOr<Design> from_spef_files(
      const std::vector<std::string>& paths);

  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_couplings() const { return couplings_.size(); }
  const DesignNet& net(int i) const {
    return nets_[static_cast<std::size_t>(i)];
  }

  /// Net index by name; kNotFound when absent.
  StatusOr<int> find(const std::string& name) const;

  /// Indices of nets analyzed as victims, in net order.
  std::vector<int> victims() const;

  /// Distinct nets sharing a coupling edge with net i, ascending.
  std::vector<int> neighbors(int i) const;

  /// Victim views invalidated by an edit of net i: net i itself (if a
  /// victim) plus every victim coupled to it. Ascending, distinct.
  std::vector<int> affected_victims(int i) const;

  /// Net i's victim-centric CoupledNet: aggressors are its neighbors
  /// (ascending net order) switching opposite to it.
  StatusOr<CoupledNet> coupled_view(int i) const;

  /// ECO edits. Each validates fully before mutating (strong guarantee)
  /// and returns kInvalidArgument / kNotFound on bad input.
  Status scale_net(int i, double scale_r, double scale_c);
  Status set_driver_size(int i, double size);

  /// Full-fidelity JSON serialization for the server's durable
  /// snapshots: every field of every net and coupling, doubles rendered
  /// at %.17g by the json writer so to_json → dump → parse → from_json
  /// reproduces the design bit-identically. from_json rejects malformed
  /// or partial documents as kInvalidArgument without constructing a
  /// half-valid design.
  json::Value to_json() const;
  static StatusOr<Design> from_json(const json::Value& v);

 private:
  std::vector<DesignNet> nets_;
  std::vector<DesignCoupling> couplings_;
};

}  // namespace dn::server
