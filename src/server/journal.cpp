#include "server/journal.hpp"

namespace dn::server {

Status Journal::open(const std::string& path, durable::FsyncPolicy policy) {
  return log_.open(path, policy);
}

Status Journal::append(std::uint64_t seq, const char* kind,
                       const json::Value& body) {
  if (!log_.is_open())
    return Status::FailedPrecondition("journal: not open");
  json::Object rec;
  rec["seq"] = seq;
  rec[kind] = body;
  return log_.append(json::Value(std::move(rec)).dump());
}

Status Journal::append_request(std::uint64_t seq, const json::Value& request) {
  return append(seq, "req", request);
}

Status Journal::append_incident(std::uint64_t seq,
                                const json::Value& incident) {
  return append(seq, "incident", incident);
}

Status Journal::truncate() { return log_.truncate(); }

void Journal::close() { log_.close(); }

StatusOr<Journal::Replay> Journal::read(const std::string& path) {
  StatusOr<durable::LogRecords> raw = durable::read_log(path);
  if (!raw.ok()) return raw.status();

  Replay out;
  out.torn_tail = raw->torn_tail;
  out.valid_bytes = raw->valid_bytes;
  for (const std::string& payload : raw->records) {
    StatusOr<json::Value> doc = json::parse(payload);
    // A frame whose checksum validated but whose JSON does not means the
    // writer itself was corrupt — trust nothing from here on.
    if (!doc.ok() || !doc->is_object()) {
      out.torn_tail = true;
      break;
    }
    const json::Value* seq = doc->find("seq");
    if (!seq || !seq->is_number()) {
      out.torn_tail = true;
      break;
    }
    Entry e;
    e.seq = static_cast<std::uint64_t>(seq->as_number());
    if (const json::Value* req = doc->find("req")) e.request = *req;
    if (const json::Value* inc = doc->find("incident")) e.incident = *inc;
    if (e.request.is_null() && e.incident.is_null()) {
      out.torn_tail = true;
      break;
    }
    out.entries.push_back(std::move(e));
  }
  return out;
}

}  // namespace dn::server
