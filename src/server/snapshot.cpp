#include "server/snapshot.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/durable_io.hpp"

namespace dn::server {

namespace {

constexpr int kSnapshotVersion = 1;

/// u64 content hashes cannot ride a JSON number (doubles lose the top
/// bits), so they travel as fixed hex strings.
std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

StatusOr<std::uint64_t> parse_hex64(const json::Value& v, const char* what) {
  StatusOr<std::string> s = v.require_string(what);
  if (!s.ok()) return s.status();
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(s->c_str(), &end, 16);
  if (s->empty() || end != s->c_str() + s->size())
    return Status::InvalidArgument(std::string(what) +
                                   " must be a hex string");
  return static_cast<std::uint64_t>(parsed);
}

Status malformed(const std::string& what) {
  return Status::InvalidArgument("snapshot: " + what);
}

}  // namespace

Status write_snapshot(const std::string& path, const SnapshotData& snap) {
  json::Object o;
  o["snapshot_version"] = kSnapshotVersion;
  o["seq"] = snap.seq;
  o["config"] = snap.config;
  o["has_design"] = snap.has_design;
  if (snap.has_design) o["design"] = snap.design;
  if (!snap.char_cache_file.empty()) {
    o["char_cache"] = snap.char_cache_file;
    o["char_cache_hash"] = hex64(snap.char_cache_hash);
  }
  if (!snap.reduction_cache_file.empty()) {
    o["reduction_cache"] = snap.reduction_cache_file;
    o["reduction_cache_hash"] = hex64(snap.reduction_cache_hash);
  }
  return durable::atomic_write_file(path,
                                    json::Value(std::move(o)).dump() + "\n");
}

StatusOr<SnapshotData> read_snapshot(const std::string& path) {
  StatusOr<std::string> bytes = durable::read_file(path);
  if (!bytes.ok()) return bytes.status();
  StatusOr<json::Value> doc = json::parse(*bytes);
  if (!doc.ok())
    return malformed("unparseable (" + doc.status().message() + ")");
  if (!doc->is_object()) return malformed("document must be an object");

  const json::Value* version = doc->find("snapshot_version");
  if (!version || !version->is_number())
    return malformed("missing snapshot_version");
  if (static_cast<int>(version->as_number()) != kSnapshotVersion)
    return malformed("unsupported snapshot_version");

  SnapshotData snap;
  const json::Value* seq = doc->find("seq");
  if (!seq || !seq->is_number()) return malformed("missing seq");
  snap.seq = static_cast<std::uint64_t>(seq->as_number());

  const json::Value* config = doc->find("config");
  if (!config || !config->is_object()) return malformed("missing config");
  snap.config = *config;

  const json::Value* has_design = doc->find("has_design");
  if (!has_design || !has_design->is_bool())
    return malformed("missing has_design");
  snap.has_design = has_design->as_bool();
  if (snap.has_design) {
    const json::Value* design = doc->find("design");
    if (!design || !design->is_object())
      return malformed("has_design without design");
    snap.design = *design;
  }

  if (const json::Value* f = doc->find("char_cache")) {
    StatusOr<std::string> name = f->require_string("char_cache");
    if (!name.ok()) return name.status();
    const json::Value* h = doc->find("char_cache_hash");
    if (!h) return malformed("char_cache without char_cache_hash");
    StatusOr<std::uint64_t> hash = parse_hex64(*h, "char_cache_hash");
    if (!hash.ok()) return hash.status();
    snap.char_cache_file = std::move(*name);
    snap.char_cache_hash = *hash;
  }
  if (const json::Value* f = doc->find("reduction_cache")) {
    StatusOr<std::string> name = f->require_string("reduction_cache");
    if (!name.ok()) return name.status();
    const json::Value* h = doc->find("reduction_cache_hash");
    if (!h) return malformed("reduction_cache without reduction_cache_hash");
    StatusOr<std::uint64_t> hash = parse_hex64(*h, "reduction_cache_hash");
    if (!hash.ok()) return hash.status();
    snap.reduction_cache_file = std::move(*name);
    snap.reduction_cache_hash = *hash;
  }
  return snap;
}

}  // namespace dn::server
