// Atomic session snapshots for the durable server.
//
// A snapshot is one JSON file capturing everything the session needs to
// answer requests identically after a restart: the fully materialized
// Design (not its generation spec — SPEF files may have moved), the
// AnalysisConfig, the sequence number of the last mutation covered, and
// pointers to the cache sidecar files with whole-file content hashes.
// It is written with durable::atomic_write_file, so a crash mid-snapshot
// leaves the previous snapshot intact, and a successful write is
// immediately followed by truncating the journal it supersedes.
//
// The caches are a pure performance artifact — analysis results never
// depend on whether a cache hit or re-derived — so recovery loads them
// best-effort: a missing, hash-mismatched, or spec-skewed sidecar is
// simply skipped and the tables/reductions are recomputed on demand.
#pragma once

#include <cstdint>
#include <string>

#include "util/json.hpp"
#include "util/status.hpp"

namespace dn::server {

struct SnapshotData {
  /// Sequence number of the last journaled mutation this state covers.
  std::uint64_t seq = 0;
  json::Value config;  // AnalysisConfig::to_json().
  bool has_design = false;
  json::Value design;  // Design::to_json() when has_design.
  /// Cache sidecars, relative to the state directory; empty = none.
  /// The hash is FNV-1a over the sidecar's whole byte content at
  /// snapshot time — recovery verifies it before feeding the file to
  /// the cache loader (which re-verifies its own embedded payload hash).
  std::string char_cache_file;
  std::uint64_t char_cache_hash = 0;
  std::string reduction_cache_file;
  std::uint64_t reduction_cache_hash = 0;
};

/// Atomically replaces `path` with the serialized snapshot.
Status write_snapshot(const std::string& path, const SnapshotData& snap);

/// Reads and validates a snapshot file. kNotFound when absent; malformed
/// or version-skewed content is kInvalidArgument, never a crash.
StatusOr<SnapshotData> read_snapshot(const std::string& path);

}  // namespace dn::server
