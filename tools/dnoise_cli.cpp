// dnoise_cli — command-line delay/functional noise analysis of coupled
// nets described in the SPEF-subset format (see rcnet/spef.hpp for the
// grammar; examples/spef_flow generates decks).
//
// Single-net mode:
//   dnoise_cli <file.spef> [options]
//     --exhaustive       exhaustive alignment search instead of the
//                        8-point prediction tables
//     --thevenin         traditional Thevenin holding (no Rtr)
//     --functional       also run the functional (static victim) check
//     --golden           cross-check against the full nonlinear simulation
//     --csv              emit a single CSV result row instead of a report
//     --json             emit the report as one JSON object
//
// Batch mode (the full-chip engine):
//   dnoise_cli --batch <file.spef>... [--jobs N] [--top K] [--json]
//   dnoise_cli --batch --random N [--seed S] [--jobs N] [--top K] [--json]
//     Fans the nets across N workers sharing one characterization cache.
//     Per-net failures (unreadable/malformed decks, solver errors) are
//     recorded and the run continues. stdout is byte-identical for any
//     --jobs value; throughput/cache stats go to stderr.
//     [--load-cache FILE] preloads characterized alignment tables,
//     [--save-cache FILE] persists them after the run.
//
// Server mode (the resident analysis daemon, DESIGN.md §11):
//   dnoise_cli --serve [--socket PATH] [--queue-soft N] [--queue-hard N]
//     Speaks newline-delimited JSON (one request object per line, one
//     response per line) on stdin/stdout, or on a Unix socket with
//     --socket. Verbs: ping, load_design, update_net, update_driver,
//     analyze, config, stats, save_cache, load_cache, shutdown.
//
// Configuration (single, batch, and serve modes): every analysis knob is
// a key of dn::AnalysisConfig. Flags below are shorthand for those keys;
// --config FILE loads a JSON object of them first (flags win). Flags and
// server `config` requests share ONE validation path — a bad value is a
// clean error, never a crash.
//
// Screening mode:
//   dnoise_cli --screen <file.spef>... (rank by severity)
//
// Observability (any mode; see DESIGN.md §8):
//   --profile              per-stage metrics summary on stderr
//   --metrics-json <file>  full metrics registry as JSON
//   --trace-out <file>     Chrome/Perfetto trace_event timeline JSON
//
// Fault tolerance (see DESIGN.md §10):
//   --deadline-ms MS       wall-clock budget (batch: whole run; single:
//                          the one net); expired work reports
//                          DEADLINE_EXCEEDED instead of hanging
//   --max-retries N        batch: re-run transiently failed nets up to N times
//   --prereduce            TICER-prereduce nets before analysis (exercises
//                          the mor_to_unreduced rung on breakdown)
//   --inject-faults SPEC   deterministic chaos testing: SPEC is
//                          "site[:rate],..." with sites
//                          parse|cache|factor|newton|task|all
//   --fault-seed N         seed for the injection hash (default 1)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "clarinet/analysis_config.hpp"
#include "clarinet/batch_analyzer.hpp"
#include "clarinet/screening.hpp"
#include "core/baselines.hpp"
#include "core/functional_noise.hpp"
#include "rcnet/random_nets.hpp"
#include "rcnet/spef.hpp"
#include "server/server.hpp"
#include "util/deadline.hpp"
#include "util/durable_io.hpp"
#include "util/fault_injection.hpp"
#include "util/trace.hpp"
#include "util/units.hpp"

using namespace dn;
using namespace dn::units;

namespace {

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

int int_flag(int argc, char** argv, const char* name, int fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atoi(argv[i + 1]);
  return fallback;
}

double double_flag(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  return fallback;
}

const char* str_flag(int argc, char** argv, const char* name,
                     const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return fallback;
}

/// Positional (non-flag) arguments, skipping the values of flags that
/// take one.
std::vector<std::string> positional_args(int argc, char** argv) {
  static constexpr const char* kValueFlags[] = {
      "--jobs",        "--top",        "--random",      "--seed",
      "--screen-below", "--solver",    "--metrics-json", "--trace-out",
      "--deadline-ms", "--max-retries", "--inject-faults", "--fault-seed",
      "--config",      "--socket",     "--queue-soft",  "--queue-hard",
      "--save-cache",  "--load-cache", "--lte-tol",     "--max-dt-growth",
      "--stale-jacobian-iters", "--warm-start",
      "--fidelity",    "--fidelity-threshold", "--fidelity-margin",
      "--state-dir",   "--fsync",      "--snapshot-every", "--watchdog-ms",
      "--max-request-bytes", "--max-request-nodes", "--max-design-nets"};
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') {
      for (const char* flag : kValueFlags)
        if (std::strcmp(argv[i], flag) == 0) {
          ++i;  // Skip the flag's value.
          break;
        }
      continue;
    }
    out.emplace_back(argv[i]);
  }
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: dnoise_cli <file.spef> [--exhaustive] [--thevenin]\n"
      "                  [--functional] [--golden] [--csv] [--json]\n"
      "       dnoise_cli --batch <file.spef>... [--jobs N] [--top K] [--json]\n"
      "                  [--screen-below PS] [--load-cache F] [--save-cache F]\n"
      "                  [--fidelity off|0|1|2]  tiered screening ladder:\n"
      "                      max tier to run (2 = full verification)\n"
      "                  [--fidelity-threshold PS] ladder prune threshold\n"
      "                  [--fidelity-margin F]     tier-1 safety margin\n"
      "       dnoise_cli --batch --random N [--seed S] [--jobs N] [--top K]\n"
      "       dnoise_cli --screen <file.spef>... (rank by severity)\n"
      "       dnoise_cli --serve [--socket PATH] [--queue-soft N]\n"
      "                  [--queue-hard N]   (NDJSON analysis daemon)\n"
      "  durability (DESIGN.md §15):\n"
      "       [--state-dir DIR]  journal + snapshot directory; SIGTERM\n"
      "                          drains gracefully and snapshots\n"
      "       [--recover]        restore snapshot, replay journal tail\n"
      "       [--fsync none|always]   journal durability policy\n"
      "       [--snapshot-every N]    mutations per auto-snapshot\n"
      "       [--watchdog-ms MS]      per-request stuck-analyze bound\n"
      "       [--max-request-bytes N] [--max-request-nodes N]\n"
      "       [--max-design-nets N]   NDJSON per-request limits\n"
      "config (all analysis modes; one validation path):\n"
      "       [--config FILE]  JSON object of dn::AnalysisConfig keys\n"
      "       [--solver auto|dense|sparse]  linear-solver backend\n"
      "transient engine (DESIGN.md §12):\n"
      "       [--lte-tol V]  adaptive-step LTE bound [V]; 0 = fixed grid\n"
      "       [--max-dt-growth F]  max per-step growth of the adaptive dt\n"
      "       [--stale-jacobian-iters N]  modified-Newton reuse budget\n"
      "                                   (0 = refactor every iteration)\n"
      "       [--warm-start 0|1]  reuse DC operating points across sims\n"
      "observability (any mode):\n"
      "       [--profile] [--metrics-json FILE] [--trace-out FILE]\n"
      "fault tolerance (see DESIGN.md §10):\n"
      "       [--deadline-ms MS] [--max-retries N] [--prereduce]\n"
      "       [--inject-faults site[:rate],...] [--fault-seed N]\n"
      "       sites: parse|cache|factor|newton|task|all\n");
  return 2;
}

/// The ONE flag -> configuration path: flags become AnalysisConfig JSON
/// keys and go through the same from_json/apply validation the server's
/// `config` verb uses. --config FILE applies first; flags override it.
StatusOr<AnalysisConfig> config_from_flags(int argc, char** argv) {
  AnalysisConfig cfg;
  if (const char* path = str_flag(argc, argv, "--config", nullptr)) {
    std::ifstream is(path);
    if (!is)
      return Status::NotFound(std::string("cannot read config file ") + path);
    std::ostringstream text;
    text << is.rdbuf();
    const std::string body = text.str();
    StatusOr<AnalysisConfig> loaded =
        AnalysisConfig::from_json(std::string_view(body));
    if (!loaded.ok()) return loaded.status();
    cfg = std::move(*loaded);
  }

  json::Object flags;
  if (str_flag(argc, argv, "--jobs", nullptr))
    flags["jobs"] = int_flag(argc, argv, "--jobs", 0);
  if (str_flag(argc, argv, "--top", nullptr))
    flags["top_k"] = int_flag(argc, argv, "--top", 10);
  if (str_flag(argc, argv, "--screen-below", nullptr))
    flags["screen_below_ps"] = double_flag(argc, argv, "--screen-below", -1.0);
  if (const char* fid = str_flag(argc, argv, "--fidelity", nullptr)) {
    if (std::strcmp(fid, "off") == 0) {
      flags["fidelity_ladder"] = false;
    } else if (std::strcmp(fid, "0") == 0 || std::strcmp(fid, "1") == 0 ||
               std::strcmp(fid, "2") == 0) {
      flags["fidelity_ladder"] = true;
      flags["fidelity_max_tier"] = fid[0] - '0';
    } else {
      return Status::InvalidArgument(
          "--fidelity must be off, 0, 1, or 2");
    }
  }
  if (str_flag(argc, argv, "--fidelity-threshold", nullptr))
    flags["fidelity_threshold_ps"] =
        double_flag(argc, argv, "--fidelity-threshold", 5.0);
  if (str_flag(argc, argv, "--fidelity-margin", nullptr))
    flags["fidelity_margin"] =
        double_flag(argc, argv, "--fidelity-margin", 3.0);
  if (str_flag(argc, argv, "--deadline-ms", nullptr))
    flags["deadline_ms"] = double_flag(argc, argv, "--deadline-ms", -1.0);
  if (str_flag(argc, argv, "--max-retries", nullptr))
    flags["max_retries"] = int_flag(argc, argv, "--max-retries", 0);
  if (const char* solver = str_flag(argc, argv, "--solver", nullptr))
    flags["solver"] = solver;
  if (has_flag(argc, argv, "--exhaustive")) flags["exhaustive"] = true;
  if (has_flag(argc, argv, "--thevenin")) flags["thevenin"] = true;
  if (has_flag(argc, argv, "--prereduce")) flags["prereduce"] = true;
  if (str_flag(argc, argv, "--lte-tol", nullptr))
    flags["lte_tol"] = double_flag(argc, argv, "--lte-tol", 5e-4);
  if (str_flag(argc, argv, "--max-dt-growth", nullptr))
    flags["max_dt_growth"] = double_flag(argc, argv, "--max-dt-growth", 2.0);
  if (str_flag(argc, argv, "--stale-jacobian-iters", nullptr))
    flags["stale_jacobian_iters"] =
        int_flag(argc, argv, "--stale-jacobian-iters", 8);
  if (str_flag(argc, argv, "--warm-start", nullptr))
    flags["warm_start"] = int_flag(argc, argv, "--warm-start", 1) != 0;

  Status applied = cfg.apply(json::Value(std::move(flags)));
  if (!applied.ok()) return applied;
  return cfg;
}

/// Turns the observability subsystems on per the flags; returns whether
/// any finalization output is owed.
struct ObsFlags {
  bool profile = false;
  const char* metrics_json = nullptr;
  const char* trace_out = nullptr;
};

ObsFlags setup_observability(int argc, char** argv) {
  ObsFlags f;
  f.profile = has_flag(argc, argv, "--profile");
  f.metrics_json = str_flag(argc, argv, "--metrics-json", nullptr);
  f.trace_out = str_flag(argc, argv, "--trace-out", nullptr);
  if (f.profile || f.metrics_json) obs::set_metrics_enabled(true);
  if (f.trace_out) obs::set_tracing_enabled(true);
  return f;
}

/// Writes the owed observability outputs. Keeps batch stdout untouched:
/// the profile goes to stderr, metrics/trace to their files.
int finalize_observability(const ObsFlags& f) {
  int rc = 0;
  if (f.profile) {
    std::ostringstream os;
    obs::metrics().write_summary(os);
    std::fputs(os.str().c_str(), stderr);
  }
  // Both artifacts go through the atomic tmp+rename helper: a consumer
  // tailing the path (or a crash mid-write) never sees a partial JSON.
  if (f.metrics_json) {
    std::ostringstream out;
    obs::metrics().write_json(out);
    out << "\n";
    const Status s = durable::atomic_write_file(f.metrics_json, out.str());
    if (!s.ok()) {
      std::fprintf(stderr, "error: cannot write metrics to %s: %s\n",
                   f.metrics_json, s.message().c_str());
      rc = 1;
    }
  }
  if (f.trace_out) {
    std::ostringstream out;
    obs::TraceRecorder::instance().write_json(out);
    out << "\n";
    const Status s = durable::atomic_write_file(f.trace_out, out.str());
    if (!s.ok()) {
      std::fprintf(stderr, "error: cannot write trace to %s: %s\n",
                   f.trace_out, s.message().c_str());
      rc = 1;
    }
  }
  return rc;
}

int run_screening(int argc, char** argv) {
  const std::vector<std::string> files = positional_args(argc, argv);
  if (files.empty()) return usage();

  std::vector<CoupledNet> nets;
  for (const auto& f : files) {
    StatusOr<CoupledNet> net = try_read_spef_file(f);
    if (!net.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", f.c_str(),
                   net.status().to_string().c_str());
      return 1;
    }
    nets.push_back(std::move(*net));
  }
  const auto order = rank_by_severity(nets);
  std::printf("%-40s %12s %12s\n", "file (most severe first)", "est_noise_V",
              "est_dnoise_ps");
  for (const std::size_t i : order) {
    StatusOr<ScreeningEstimate> est = try_screen_net(nets[i]);
    if (!est.ok()) {
      std::printf("%-40s %25s\n", files[i].c_str(),
                  status_code_name(est.status().code()));
      continue;
    }
    std::printf("%-40s %12.4f %12.2f\n", files[i].c_str(), est->vn_est,
                est->dn_est / ps);
  }
  return 0;
}

int run_batch(int argc, char** argv, const AnalysisConfig& cfg) {
  std::vector<CoupledNet> nets;
  std::vector<std::string> names;
  std::vector<BatchNetResult> load_failures;

  const int n_random = int_flag(argc, argv, "--random", 0);
  if (n_random > 0) {
    Rng rng(static_cast<std::uint64_t>(int_flag(argc, argv, "--seed", 1)));
    for (int i = 0; i < n_random; ++i) {
      nets.push_back(random_coupled_net(rng));
      names.push_back("random" + std::to_string(i));
    }
  } else {
    const std::vector<std::string> files = positional_args(argc, argv);
    if (files.empty()) return usage();
    for (const auto& f : files) {
      StatusOr<CoupledNet> net = try_read_spef_file(f);
      if (net.ok()) {
        nets.push_back(std::move(*net));
        names.push_back(f);
      } else {
        // Record and continue — one bad deck must not kill the batch.
        BatchNetResult fail;
        fail.name = f;
        fail.status = net.status();
        load_failures.push_back(std::move(fail));
      }
    }
  }

  BatchAnalyzer engine(cfg.batch);
  // --load-cache: start warm from a previous run's characterizations.
  if (const char* path = str_flag(argc, argv, "--load-cache", nullptr)) {
    StatusOr<std::size_t> loaded = engine.cache()->load_file(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %zu cached alignment tables from %s\n",
                 *loaded, path);
  }
  BatchResult result = engine.analyze(nets, names);

  // Splice load failures into the accounting (after the analyzed nets, in
  // input order — still deterministic).
  for (auto& fail : load_failures) {
    fail.index = result.nets.size();
    result.nets.push_back(std::move(fail));
    ++result.stats.total;
    ++result.stats.failed;
  }

  if (has_flag(argc, argv, "--json")) {
    result.write_json(std::cout);
    std::cout << "\n";
  } else {
    result.write_text(std::cout);
  }
  std::fprintf(stderr, "%s\n", result.stats_text().c_str());

  if (const char* path = str_flag(argc, argv, "--save-cache", nullptr)) {
    Status saved = engine.cache()->save_file(path);
    if (!saved.ok()) {
      std::fprintf(stderr, "error: %s\n", saved.to_string().c_str());
      return 1;
    }
  }
  return result.stats.analyzed > 0 || result.stats.total == 0 ? 0 : 1;
}

int run_single(int argc, char** argv, const AnalysisConfig& cfg) {
  StatusOr<CoupledNet> loaded = try_read_spef_file(argv[1]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().to_string().c_str());
    return 1;
  }
  const CoupledNet net = std::move(*loaded);
  const AnalyzerConfig& analyzer_cfg = cfg.batch.analyzer;
  NoiseAnalyzer analyzer(analyzer_cfg);

  // The deadline_ms key bounds this one net's analysis; the step loops
  // deep in the engine poll it and abort with DEADLINE_EXCEEDED.
  const double deadline_ms = cfg.batch.deadline_ms;
  ScopedDeadline scoped_deadline(
      deadline_ms > 0 ? Deadline::after(deadline_ms * 1e-3) : Deadline());

  StatusOr<DelayNoiseResult> analyzed = analyzer.try_analyze(net);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "analysis error: %s\n",
                 analyzed.status().to_string().c_str());
    return 1;
  }
  const DelayNoiseResult& r = *analyzed;

  if (has_flag(argc, argv, "--csv")) {
    std::printf("file,aggressors,coupling_fF,rth_ohm,holding_ohm,"
                "pulse_V,pulse_ps,input_dnoise_ps,combined_dnoise_ps\n");
    std::printf("%s,%zu,%.3f,%.1f,%.1f,%.4f,%.1f,%.2f,%.2f\n", argv[1],
                net.aggressors.size(), net.total_coupling_cap() / fF, r.rth,
                r.holding_r, r.composite.params.height,
                r.composite.params.width / ps, r.input_delay_noise() / ps,
                r.delay_noise() / ps);
  } else if (has_flag(argc, argv, "--json")) {
    analyzer.report(net, r, argv[1]).to_json(std::cout);
    std::cout << "\n";
  } else {
    analyzer.print_report(std::cout, net, r);
  }

  try {
    if (has_flag(argc, argv, "--golden")) {
      const GoldenResult g =
          golden_nonlinear(net, absolute_shifts(r), analyzer_cfg.engine);
      const double gd = g.delay_noise();
      std::printf("golden (full nonlinear): %.2f ps combined delay noise "
                  "(linear model error %+.1f%%)\n",
                  gd / ps, gd != 0 ? 100.0 * (r.delay_noise() - gd) / gd : 0.0);
    }

    if (has_flag(argc, argv, "--functional")) {
      SuperpositionEngine eng(net, analyzer_cfg.engine);
      const FunctionalNoiseResult f = analyze_functional_noise(eng);
      std::printf("functional noise (victim quiet %s): input peak %.3f V, "
                  "receiver output peak %.3f V -> %s\n",
                  f.victim_quiet_high ? "HIGH" : "LOW", f.input_peak,
                  f.output_peak, f.failure ? "FAILURE" : "ok");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "analysis error: %s\n", e.what());
    return 1;
  }
  return 0;
}

int run_serve(int argc, char** argv, const AnalysisConfig& cfg) {
  server::ServerOptions opts;
  opts.config = cfg;
  opts.queue_soft_limit = static_cast<std::size_t>(
      std::max(1, int_flag(argc, argv, "--queue-soft", 8)));
  opts.queue_hard_limit = static_cast<std::size_t>(std::max(
      static_cast<int>(opts.queue_soft_limit),
      int_flag(argc, argv, "--queue-hard", 64)));
  if (const char* dir = str_flag(argc, argv, "--state-dir", nullptr))
    opts.durability.state_dir = dir;
  opts.durability.recover = has_flag(argc, argv, "--recover");
  if (opts.durability.recover && opts.durability.state_dir.empty()) {
    std::fprintf(stderr, "error: --recover requires --state-dir\n");
    return 2;
  }
  if (const char* fsync = str_flag(argc, argv, "--fsync", nullptr)) {
    if (std::strcmp(fsync, "always") == 0) {
      opts.durability.fsync = durable::FsyncPolicy::kAlways;
    } else if (std::strcmp(fsync, "none") == 0) {
      opts.durability.fsync = durable::FsyncPolicy::kNone;
    } else {
      std::fprintf(stderr, "error: --fsync must be none or always\n");
      return 2;
    }
  }
  opts.durability.snapshot_every = static_cast<std::uint64_t>(
      std::max(0, int_flag(argc, argv, "--snapshot-every", 32)));
  opts.durability.watchdog_ms =
      std::max(0.0, double_flag(argc, argv, "--watchdog-ms", 0.0));
  opts.limits.max_request_bytes = static_cast<std::size_t>(std::max(
      0, int_flag(argc, argv, "--max-request-bytes",
                  static_cast<int>(opts.limits.max_request_bytes))));
  opts.limits.max_request_nodes = static_cast<std::size_t>(std::max(
      0, int_flag(argc, argv, "--max-request-nodes",
                  static_cast<int>(opts.limits.max_request_nodes))));
  opts.limits.max_design_nets = static_cast<std::size_t>(std::max(
      0, int_flag(argc, argv, "--max-design-nets",
                  static_cast<int>(opts.limits.max_design_nets))));
  server::Server srv(opts);
  if (const char* path = str_flag(argc, argv, "--socket", nullptr))
    return srv.serve_unix(path);
  return srv.serve_stream(std::cin, std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const ObsFlags obs_flags = setup_observability(argc, argv);
  // Chaos harness: install the deterministic fault-injection config before
  // any analysis runs. Probes key on stable identities (net index, cache
  // key), so a fixed spec + seed reproduces bit-for-bit at any --jobs.
  if (const char* spec_str = str_flag(argc, argv, "--inject-faults", nullptr)) {
    StatusOr<fault::FaultSpec> spec = fault::parse_fault_spec(spec_str);
    if (!spec.ok()) {
      std::fprintf(stderr, "error: %s\n", spec.status().to_string().c_str());
      return 2;
    }
    fault::install(*spec, static_cast<std::uint64_t>(
                              int_flag(argc, argv, "--fault-seed", 1)));
  }

  int rc;
  if (has_flag(argc, argv, "--screen")) {
    rc = run_screening(argc, argv);
  } else {
    StatusOr<AnalysisConfig> cfg = config_from_flags(argc, argv);
    if (!cfg.ok()) {
      std::fprintf(stderr, "error: %s\n", cfg.status().to_string().c_str());
      return 2;
    }
    if (has_flag(argc, argv, "--serve")) {
      rc = run_serve(argc, argv, *cfg);
    } else if (has_flag(argc, argv, "--batch")) {
      rc = run_batch(argc, argv, *cfg);
    } else if (argc < 2 || argv[1][0] == '-') {
      return usage();
    } else {
      rc = run_single(argc, argv, *cfg);
    }
  }
  const int obs_rc = finalize_observability(obs_flags);
  return rc ? rc : obs_rc;
}
