// dnoise_cli — command-line delay/functional noise analysis of a coupled
// net described in the SPEF-subset format (see rcnet/spef.hpp for the
// grammar; examples/spef_flow generates decks).
//
// Usage:
//   dnoise_cli <file.spef> [options]
//     --exhaustive       exhaustive alignment search instead of the
//                        8-point prediction tables
//     --thevenin         traditional Thevenin holding (no Rtr)
//     --functional       also run the functional (static victim) check
//     --golden           cross-check against the full nonlinear simulation
//     --csv              emit a single CSV result row instead of a report
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "clarinet/analyzer.hpp"
#include "core/baselines.hpp"
#include "core/functional_noise.hpp"
#include "clarinet/screening.hpp"
#include "rcnet/spef.hpp"
#include "util/units.hpp"

using namespace dn;
using namespace dn::units;

namespace {

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

int usage() {
  std::fprintf(stderr,
               "usage: dnoise_cli <file.spef> [--exhaustive] [--thevenin] "
               "[--functional] [--golden] [--csv]\n"
               "       dnoise_cli --screen <file.spef>... (rank by severity)\n");
  return 2;
}

}  // namespace

int run_screening(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i)
    if (argv[i][0] != '-') files.emplace_back(argv[i]);
  if (files.empty()) return usage();

  std::vector<CoupledNet> nets;
  for (const auto& f : files) {
    try {
      nets.push_back(read_spef_file(f));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error reading %s: %s\n", f.c_str(), e.what());
      return 1;
    }
  }
  const auto order = rank_by_severity(nets);
  std::printf("%-40s %12s %12s\n", "file (most severe first)", "est_noise_V",
              "est_dnoise_ps");
  for (const std::size_t i : order) {
    const ScreeningEstimate est = screen_net(nets[i]);
    std::printf("%-40s %12.4f %12.2f\n", files[i].c_str(), est.vn_est,
                est.dn_est / ps);
  }
  return 0;
}

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--screen") == 0) return run_screening(argc, argv);
  if (argc < 2 || argv[1][0] == '-') return usage();

  CoupledNet net;
  try {
    net = read_spef_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  AnalyzerConfig cfg;
  cfg.use_prediction_tables = !has_flag(argc, argv, "--exhaustive");
  cfg.analysis.use_transient_holding = !has_flag(argc, argv, "--thevenin");
  NoiseAnalyzer analyzer(cfg);

  try {
    const DelayNoiseResult r = analyzer.analyze(net);

    if (has_flag(argc, argv, "--csv")) {
      std::printf("file,aggressors,coupling_fF,rth_ohm,holding_ohm,"
                  "pulse_V,pulse_ps,input_dnoise_ps,combined_dnoise_ps\n");
      std::printf("%s,%zu,%.3f,%.1f,%.1f,%.4f,%.1f,%.2f,%.2f\n", argv[1],
                  net.aggressors.size(), net.total_coupling_cap() / fF, r.rth,
                  r.holding_r, r.composite.params.height,
                  r.composite.params.width / ps, r.input_delay_noise() / ps,
                  r.delay_noise() / ps);
    } else {
      analyzer.print_report(std::cout, net, r);
    }

    if (has_flag(argc, argv, "--golden")) {
      const GoldenResult g = golden_nonlinear(net, absolute_shifts(r));
      const double gd = g.delay_noise();
      std::printf("golden (full nonlinear): %.2f ps combined delay noise "
                  "(linear model error %+.1f%%)\n",
                  gd / ps, gd != 0 ? 100.0 * (r.delay_noise() - gd) / gd : 0.0);
    }

    if (has_flag(argc, argv, "--functional")) {
      SuperpositionEngine eng(net, cfg.engine);
      const FunctionalNoiseResult f = analyze_functional_noise(eng);
      std::printf("functional noise (victim quiet %s): input peak %.3f V, "
                  "receiver output peak %.3f V -> %s\n",
                  f.victim_quiet_high ? "HIGH" : "LOW", f.input_peak,
                  f.output_peak, f.failure ? "FAILURE" : "ok");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "analysis error: %s\n", e.what());
    return 1;
  }
  return 0;
}
