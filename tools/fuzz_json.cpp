// fuzz_json: robustness fuzzer for the JSON parser and the server's
// NDJSON request surface.
//
// Two targets share every input:
//   1. json::parse() — the strict one-document parser. Contract: a
//      Status for ANY byte sequence; never crashes, never throws past
//      the boundary, never recurses off the stack (depth cap), never
//      loops forever.
//   2. Session::handle_line() — the resident daemon's request boundary,
//      run with deliberately tight ProtocolLimits so the fuzz loop also
//      exercises the oversized-request and node-count rejections.
//      Contract: every line gets exactly one JSON response; malformed,
//      hostile, or limit-busting requests come back as clean protocol
//      errors, and the session object stays usable for the next line.
//
// The session persists ACROSS inputs (that is the deployment shape: one
// long-lived process fed untrusted lines), and is recycled whenever a
// fuzzed line happens to spell "shutdown" — after that verb a session
// answers everything kUnavailable by design, which would blind the rest
// of the run.
//
// Two build modes from one file, same scheme as fuzz_spef:
//   - LLVMFuzzerTestOneInput is the libFuzzer ABI; with a clang
//     toolchain link with -fsanitize=fuzzer and no further changes.
//   - Without libFuzzer (the default here: plain g++), the bundled
//     main() replays a seed corpus, then runs a deterministic seeded
//     mutation loop. Same seed -> same byte streams -> reproducible.
//
// Usage (standalone):
//   fuzz_json <corpus-dir> [--iters N] [--seed S] [--max-len L]
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "server/session.hpp"
#include "util/json.hpp"

namespace {

/// One resident session, recycled after a fuzzed shutdown verb. Tight
/// limits keep worst-case work per line small (a mutated load_design
/// can legitimately parse) while still reaching the rejection paths.
dn::server::Session& fuzz_session() {
  static std::unique_ptr<dn::server::Session> session;
  if (!session || session->shutdown_requested()) {
    dn::server::ProtocolLimits limits;
    limits.max_request_bytes = 4096;
    limits.max_request_nodes = 512;
    limits.max_design_nets = 8;
    session = std::make_unique<dn::server::Session>(
        dn::AnalysisConfig{}, dn::server::DurabilityOptions{}, limits);
  }
  return *session;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // Target 1: the parser alone, unlimited size (its own caps under test).
  const dn::StatusOr<dn::json::Value> doc = dn::json::parse(text);
  (void)doc;

  // Target 2: the NDJSON request boundary. The response must always be
  // a JSON object; anything else (or an escaped exception) is the bug.
  const dn::json::Value response = fuzz_session().handle_line(text);
  (void)response;
  return 0;
}

#ifndef DN_FUZZ_LIBFUZZER

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace {

// Self-contained SplitMix64 so the driver's schedule is independent of
// libstdc++'s distribution implementations (those may change between
// releases; corpus reproducibility should not).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) {
    return n ? static_cast<std::size_t>(next() % n) : 0;
  }
};

// One mutation step: the fuzz_spef byte-level operators, with the
// keyword splice retargeted at JSON structure — unbalanced brackets,
// hostile numbers, escape fragments, verbs with surprising payloads.
void mutate(std::string& s, Rng& rng, std::size_t max_len) {
  switch (rng.below(6)) {
    case 0:  // Flip a byte.
      if (!s.empty()) s[rng.below(s.size())] = static_cast<char>(rng.next());
      break;
    case 1:  // Truncate.
      if (!s.empty()) s.resize(rng.below(s.size()));
      break;
    case 2:  // Insert a random byte.
      s.insert(s.begin() + static_cast<long>(rng.below(s.size() + 1)),
               static_cast<char>(rng.next()));
      break;
    case 3: {  // Duplicate a slice (repeated keys, doubled documents).
      if (s.empty()) break;
      const std::size_t a = rng.below(s.size());
      const std::size_t n = rng.below(s.size() - a) + 1;
      s.insert(rng.below(s.size()), s.substr(a, n));
      break;
    }
    case 4: {  // Replace a digit run with a huge number (overflow paths).
      const std::size_t at = rng.below(s.size() + 1);
      s.insert(at, "999999999999999999999");
      break;
    }
    case 5: {  // Splice in a JSON-shaped token.
      static const char* kTokens[] = {
          "{",          "}",           "[",        "]",
          "\"",         "\\u00",       "\\",       ":",
          ",",          "null",        "true",     "1e309",
          "-0.0",       "nan",         "\"verb\"", "\"load_design\"",
          "\"config\"", "\"analyze\"", "\"seq\"",  "[[[[[[[[",
      };
      const std::size_t at = rng.below(s.size() + 1);
      s.insert(at, kTokens[rng.below(sizeof(kTokens) / sizeof(kTokens[0]))]);
      break;
    }
  }
  if (s.size() > max_len) s.resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  const char* corpus_dir = nullptr;
  long iters = 20000;
  std::uint64_t seed = 1;
  std::size_t max_len = 1 << 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc)
      iters = std::atol(argv[++i]);
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--max-len") == 0 && i + 1 < argc)
      max_len = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (argv[i][0] != '-')
      corpus_dir = argv[i];
  }
  if (!corpus_dir) {
    std::fprintf(stderr,
                 "usage: fuzz_json <corpus-dir> [--iters N] [--seed S] "
                 "[--max-len L]\n");
    return 2;
  }

  std::vector<std::string> corpus;
  for (const auto& entry :
       std::filesystem::directory_iterator(corpus_dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream f(entry.path(), std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    corpus.push_back(ss.str());
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "fuzz_json: empty corpus at %s\n", corpus_dir);
    return 2;
  }

  // Phase 1: replay the seeds verbatim.
  for (const auto& s : corpus)
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size());

  // Phase 2: deterministic mutation loop. Each iteration takes a random
  // seed, applies a small stack of mutations, and feeds both targets.
  Rng rng{seed};
  for (long i = 0; i < iters; ++i) {
    std::string input = corpus[rng.below(corpus.size())];
    const std::size_t steps = 1 + rng.below(4);
    for (std::size_t m = 0; m < steps; ++m) mutate(input, rng, max_len);
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(input.data()), input.size());
  }
  std::printf("fuzz_json: %zu seeds + %ld mutated inputs, no crash\n",
              corpus.size(), iters);
  return 0;
}

#endif  // DN_FUZZ_LIBFUZZER
