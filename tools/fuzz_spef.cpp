// fuzz_spef: robustness fuzzer for the SPEF-subset parser.
//
// The parser is the one component fed attacker-shaped input (extraction
// decks from other tools, possibly truncated or corrupted in transit).
// The contract under test: try_read_spef() returns a Status for ANY byte
// sequence — it never crashes, never throws past the boundary, never
// allocates unboundedly (the node-index cap), and never loops forever.
//
// Two build modes from one file:
//   - LLVMFuzzerTestOneInput is the libFuzzer ABI; with a clang toolchain
//     link with -fsanitize=fuzzer and no further changes.
//   - Without libFuzzer (the default here: plain g++), the bundled main()
//     is a standalone driver: it replays every file of a seed corpus,
//     then runs a deterministic seeded mutation loop over the corpus.
//     Same seed -> same byte streams -> reproducible failures.
//
// Usage (standalone):
//   fuzz_spef <corpus-dir> [--iters N] [--seed S] [--max-len L]
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "rcnet/spef.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  std::istringstream is(text);
  const dn::StatusOr<dn::CoupledNet> net = dn::try_read_spef(is);
  // Any outcome is fine; reaching here without UB/crash is the pass.
  (void)net;
  return 0;
}

#ifndef DN_FUZZ_LIBFUZZER

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

namespace {

// Self-contained SplitMix64 so the driver's schedule is independent of
// libstdc++'s distribution implementations (those may change between
// releases; corpus reproducibility should not).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) {
    return n ? static_cast<std::size_t>(next() % n) : 0;
  }
};

// One mutation step: classic byte-level operators. Structure-aware
// mutation is unnecessary — the corpus seeds supply structure, and the
// operators degrade it in all the ways transit corruption does.
void mutate(std::string& s, Rng& rng, std::size_t max_len) {
  switch (rng.below(6)) {
    case 0:  // Flip a byte.
      if (!s.empty()) s[rng.below(s.size())] = static_cast<char>(rng.next());
      break;
    case 1:  // Truncate.
      if (!s.empty()) s.resize(rng.below(s.size()));
      break;
    case 2:  // Insert a random byte.
      s.insert(s.begin() + static_cast<long>(rng.below(s.size() + 1)),
               static_cast<char>(rng.next()));
      break;
    case 3: {  // Duplicate a slice (tests duplicate nets/sections).
      if (s.empty()) break;
      const std::size_t a = rng.below(s.size());
      const std::size_t n = rng.below(s.size() - a) + 1;
      s.insert(rng.below(s.size()), s.substr(a, n));
      break;
    }
    case 4: {  // Replace a digit run with a huge number (overflow paths).
      const std::size_t at = rng.below(s.size() + 1);
      s.insert(at, "999999999999999999999");
      break;
    }
    case 5: {  // Splice in a keyword-shaped token.
      static const char* kTokens[] = {"*SINK",   "*CAP", "*RES",  "*END",
                                      "*D_NET",  "nan",  "inf",   "-1",
                                      "victim:", ":",    "1e309", ""};
      const std::size_t at = rng.below(s.size() + 1);
      s.insert(at, kTokens[rng.below(sizeof(kTokens) / sizeof(kTokens[0]))]);
      break;
    }
  }
  if (s.size() > max_len) s.resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  const char* corpus_dir = nullptr;
  long iters = 20000;
  std::uint64_t seed = 1;
  std::size_t max_len = 1 << 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc)
      iters = std::atol(argv[++i]);
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--max-len") == 0 && i + 1 < argc)
      max_len = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (argv[i][0] != '-')
      corpus_dir = argv[i];
  }
  if (!corpus_dir) {
    std::fprintf(stderr,
                 "usage: fuzz_spef <corpus-dir> [--iters N] [--seed S] "
                 "[--max-len L]\n");
    return 2;
  }

  std::vector<std::string> corpus;
  for (const auto& entry :
       std::filesystem::directory_iterator(corpus_dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream f(entry.path(), std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    corpus.push_back(ss.str());
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "fuzz_spef: empty corpus at %s\n", corpus_dir);
    return 2;
  }

  // Phase 1: replay the seeds verbatim.
  for (const auto& s : corpus)
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size());

  // Phase 2: deterministic mutation loop. Each iteration takes a random
  // seed, applies a small stack of mutations, and feeds the parser.
  Rng rng{seed};
  for (long i = 0; i < iters; ++i) {
    std::string input = corpus[rng.below(corpus.size())];
    const std::size_t steps = 1 + rng.below(4);
    for (std::size_t m = 0; m < steps; ++m) mutate(input, rng, max_len);
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(input.data()), input.size());
  }
  std::printf("fuzz_spef: %zu seeds + %ld mutated inputs, no crash\n",
              corpus.size(), iters);
  return 0;
}

#endif  // DN_FUZZ_LIBFUZZER
