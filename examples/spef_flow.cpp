// Parasitics-file flow: write a coupled net to the SPEF-subset format,
// read it back (as a layout-extraction handoff would), and analyze it.
// Demonstrates the same round trip a physical-design flow uses between
// extraction and noise analysis.
//
// Usage: spef_flow [file.spef]
//   With an argument, reads that SPEF file instead of generating one.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <utility>

#include "clarinet/analyzer.hpp"
#include "rcnet/random_nets.hpp"
#include "rcnet/spef.hpp"
#include "util/units.hpp"

using namespace dn;
using namespace dn::units;

int main(int argc, char** argv) {
  CoupledNet net;
  if (argc > 1) {
    std::printf("reading %s\n", argv[1]);
    StatusOr<CoupledNet> parsed = try_read_spef_file(argv[1]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().to_string().c_str());
      return 1;
    }
    net = *std::move(parsed);
  } else {
    // Generate a parasitic deck from a seeded random net and show it.
    Rng rng(42);
    net = random_coupled_net(rng);
    std::ostringstream deck;
    write_spef(deck, net, "spef_flow_demo");
    std::printf("generated SPEF deck:\n%s\n", deck.str().c_str());

    // Round-trip through the parser, as an extraction handoff would.
    std::istringstream in(deck.str());
    net = try_read_spef(in).value();
  }

  std::printf("net: victim %d segments, %zu aggressors, %.1f fF coupling\n\n",
              net.victim.net.num_nodes - 1, net.aggressors.size(),
              net.total_coupling_cap() / fF);

  NoiseAnalyzer analyzer;
  const StatusOr<DelayNoiseResult> r = analyzer.try_analyze(net);
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().to_string().c_str());
    return 1;
  }
  analyzer.print_report(std::cout, net, *r);
  return 0;
}
