// Parasitics-file flow: write a coupled net to the SPEF-subset format,
// read it back (as a layout-extraction handoff would), and analyze it.
// Demonstrates the same round trip a physical-design flow uses between
// extraction and noise analysis.
//
// Usage: spef_flow [file.spef]
//   With an argument, reads that SPEF file instead of generating one.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "clarinet/analyzer.hpp"
#include "rcnet/random_nets.hpp"
#include "rcnet/spef.hpp"
#include "util/units.hpp"

using namespace dn;
using namespace dn::units;

int main(int argc, char** argv) {
  CoupledNet net;
  if (argc > 1) {
    std::printf("reading %s\n", argv[1]);
    net = read_spef_file(argv[1]);
  } else {
    // Generate a parasitic deck from a seeded random net and show it.
    Rng rng(42);
    net = random_coupled_net(rng);
    std::ostringstream deck;
    write_spef(deck, net, "spef_flow_demo");
    std::printf("generated SPEF deck:\n%s\n", deck.str().c_str());

    // Round-trip through the parser, as an extraction handoff would.
    std::istringstream in(deck.str());
    net = read_spef(in);
  }

  std::printf("net: victim %d segments, %zu aggressors, %.1f fF coupling\n\n",
              net.victim.net.num_nodes - 1, net.aggressors.size(),
              net.total_coupling_cap() / fF);

  NoiseAnalyzer analyzer;
  const DelayNoiseResult r = analyzer.analyze(net);
  analyzer.print_report(std::cout, net, r);
  return 0;
}
