// Bus crosstalk scenario: a victim wire routed between two parallel
// aggressor wires in a bus (the classic layout the paper's introduction
// motivates — coupling capacitance dominates between long parallel runs).
//
// Uses the top-level NoiseAnalyzer (per-receiver alignment tables are
// characterized once, then shared across all victim positions), sweeps the
// victim's position-dependent coupling, and reports delay noise per lane.
//
// Usage: bus_crosstalk
#include <cstdio>
#include <iostream>

#include "clarinet/analyzer.hpp"
#include "rcnet/net.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace dn;
using namespace dn::units;

namespace {

/// A victim lane in an N-wire bus with both neighbors switching opposite.
/// `cc_per_side` is the total victim<->neighbor coupling per side.
CoupledNet bus_lane(double cc_per_side, double victim_slew) {
  CoupledNet cn;
  const int segs = 8;
  cn.victim.net = make_line(segs, 1500.0, 70 * fF);
  cn.victim.driver = {GateType::Inverter, 1.0, 1.8};
  cn.victim.input_slew = victim_slew;
  cn.victim.output_rising = true;
  cn.victim.receiver = {GateType::Inverter, 2.0, 1.8};
  cn.victim.receiver_load = 15 * fF;

  for (int side = 0; side < 2; ++side) {
    AggressorDesc agg;
    agg.net = make_line(segs, 1000.0, 60 * fF);
    agg.driver = {GateType::Inverter, 4.0, 1.8};
    agg.input_slew = 80 * ps;
    agg.output_rising = false;
    cn.aggressors.push_back(agg);
    for (int j = 1; j < segs; ++j)
      cn.couplings.push_back({side, j, j, cc_per_side / (segs - 1)});
  }
  cn.validate();
  return cn;
}

}  // namespace

int main() {
  std::printf("bus crosstalk: victim lane between two opposing aggressors\n\n");

  AnalyzerConfig cfg;
  NoiseAnalyzer analyzer(cfg);

  Table tbl({"cc_per_side_fF", "victim_slew_ps", "pulse_V", "pulse_ps",
             "Rth_ohm", "Rtr_ohm", "intercon_dN_ps", "combined_dN_ps"});
  for (double cc : {10 * fF, 25 * fF, 45 * fF}) {
    for (double slew : {120 * ps, 300 * ps}) {
      const CoupledNet lane = bus_lane(cc, slew);
      const DelayNoiseResult r = analyzer.try_analyze(lane).value();
      tbl.add_row_values({cc / fF, slew / ps, r.composite.params.height,
                          r.composite.params.width / ps, r.rth, r.holding_r,
                          r.input_delay_noise() / ps, r.delay_noise() / ps});
    }
  }
  tbl.print(std::cout);
  std::printf("\n(%zu alignment tables characterized and reused)\n",
              analyzer.tables_cached());

  // Detailed report for the worst lane configuration.
  const CoupledNet worst = bus_lane(45 * fF, 300 * ps);
  const DelayNoiseResult r = analyzer.try_analyze(worst).value();
  std::printf("\n");
  analyzer.print_report(std::cout, worst, r);
  return 0;
}
