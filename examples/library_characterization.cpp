// Library preparation: pre-characterize every cell the way the paper's
// tool does before analysis — Thevenin (t0, tr, Rth) tables over an
// (input slew x effective load) grid, plus the 8-point worst-case
// alignment tables per receiver type — and print the results.
//
// Usage: library_characterization
#include <cstdio>
#include <iostream>

#include "ceff/thevenin_table.hpp"
#include "core/alignment_table.hpp"
#include "devices/gate_library.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace dn;
using namespace dn::units;

int main() {
  std::printf("library pre-characterization (as the tool would run once per "
              "cell library)\n\n");

  const GateLibrary lib = GateLibrary::standard();
  const std::vector<double> slews{80 * ps, 200 * ps, 400 * ps};
  const std::vector<double> loads{10 * fF, 40 * fF, 120 * fF};

  // Thevenin tables for the inverter drive strengths, rising output.
  std::printf("Thevenin Rth [Ohm] over (input slew x load), rising output:\n");
  for (const char* cell : {"INVX1", "INVX2", "INVX4", "INVX8"}) {
    const TheveninTable tbl =
        TheveninTable::characterize(lib.cell(cell), true, slews, loads);
    Table t({"cell", "slew_ps", "R@10fF", "R@40fF", "R@120fF", "tr@40fF_ps"});
    for (std::size_t si = 0; si < slews.size(); ++si)
      t.add_row({cell, Table::fmt(slews[si] / ps),
                 Table::fmt(tbl.at(si, 0).rth, 4),
                 Table::fmt(tbl.at(si, 1).rth, 4),
                 Table::fmt(tbl.at(si, 2).rth, 4),
                 Table::fmt(tbl.at(si, 1).tr / ps, 4)});
    t.print(std::cout);
    std::printf("\n");
  }

  // Alignment tables (8 points each) for two receiver types.
  std::printf("worst-case alignment voltages [V] (8-point tables, rising "
              "victim):\n");
  AlignmentTableSpec spec;
  spec.search.coarse_points = 25;
  spec.search.fine_points = 11;
  spec.search.dt = 2 * ps;
  for (const char* cell : {"INVX2", "NAND2X2"}) {
    const AlignmentTable tbl =
        AlignmentTable::characterize(lib.cell(cell), true, spec);
    Table t({"cell", "slew", "width", "va@hmin_V", "va@hmax_V"});
    const char* slew_names[2] = {"min", "max"};
    const char* width_names[2] = {"min", "max"};
    for (int si = 0; si < 2; ++si)
      for (int wi = 0; wi < 2; ++wi)
        t.add_row({cell, slew_names[si], width_names[wi],
                   Table::fmt(tbl.alignment_voltage(si, wi, 0), 4),
                   Table::fmt(tbl.alignment_voltage(si, wi, 1), 4)});
    t.print(std::cout);
    std::printf("\n");
  }

  std::printf("done: %zu library cells available; tables above are what the\n"
              "NoiseAnalyzer caches internally on first use.\n",
              lib.size());
  return 0;
}
