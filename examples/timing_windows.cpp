// Timing-window iteration example: crosstalk delay noise inside a small
// combinational block, with arrival windows constraining the aggressor
// alignment and the window/noise fixed point iterated to convergence
// (references [8][9] of the paper).
//
// Usage: timing_windows
#include <cstdio>
#include <iostream>

#include "rcnet/random_nets.hpp"
#include "sta/noise_iteration.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace dn;
using namespace dn::units;

int main() {
  std::printf("timing-window / delay-noise fixed point on a small block\n\n");

  // A two-stage datapath slice: nets d0/d1 feed s0; control net c runs
  // alongside d0 (coupled) and also feeds the output stage.
  TimingGraph g;
  const int in_d = g.add_primary_input("in_d", 0.0, 60 * ps);
  const int in_c = g.add_primary_input("in_c", 20 * ps, 180 * ps);
  const int d0 = g.add_net("d0");
  const int c = g.add_net("c");
  const int s0 = g.add_net("s0");
  g.add_gate(d0, {in_d}, 130 * ps);
  g.add_gate(c, {in_c}, 70 * ps);
  g.add_gate(s0, {d0, c}, 95 * ps);

  // d0 is a victim of the control net c.
  NetCouplingSite site;
  site.victim_net = d0;
  site.aggressor_net = c;
  site.model = example_coupled_net(1);

  NoiseIterationOptions opts;
  opts.analysis.method = AlignmentMethod::Exhaustive;
  const NoiseIterationResult r = iterate_windows_with_noise(g, {site}, opts);

  Table hist({"pass", "max_extra_delay_ps"});
  for (std::size_t i = 0; i < r.max_extra_history.size(); ++i)
    hist.add_row_values(
        {static_cast<double>(i + 1), r.max_extra_history[i] / ps});
  hist.print(std::cout);

  const auto base = g.compute_windows();
  std::printf("\nfinal arrival windows (ps):\n");
  Table wt({"net", "early", "late(no noise)", "late(noisy)"});
  for (int n = 0; n < g.num_nets(); ++n) {
    const auto i = static_cast<std::size_t>(n);
    wt.add_row({g.net_name(n), Table::fmt(r.windows.early[i] / ps),
                Table::fmt(base.late[i] / ps),
                Table::fmt(r.windows.late[i] / ps)});
  }
  wt.print(std::cout);
  std::printf("\nconverged after %d passes (%s)\n", r.iterations,
              r.converged ? "stable" : "NOT stable");
  std::printf("victim d0 extra delay: %.1f ps, propagated to s0: late "
              "%.1f -> %.1f ps\n",
              r.extra_delay[static_cast<std::size_t>(d0)] / ps,
              base.late[static_cast<std::size_t>(s0)] / ps,
              r.windows.late[static_cast<std::size_t>(s0)] / ps);
  return 0;
}
