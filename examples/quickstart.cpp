// Quickstart: analyze crosstalk delay noise on one coupled net.
//
// Builds the library's canonical example net (one weak victim inverter on
// a resistive line, one strong opposing aggressor coupled along its run),
// runs the full paper flow — C-effective + Thevenin characterization,
// transient holding resistance, worst-case alignment — and compares the
// traditional Thevenin analysis, the paper's Rtr analysis, and the full
// nonlinear (SPICE-equivalent) golden simulation.
//
// Usage: quickstart
#include <cstdio>

#include "core/baselines.hpp"
#include "core/delay_noise.hpp"
#include "rcnet/random_nets.hpp"
#include "util/units.hpp"

using namespace dn;
using namespace dn::units;

int main() {
  const CoupledNet net = example_coupled_net(1);

  std::printf("victim: %d-seg line, driver INVX%g, receiver INVX%g, load %.1f fF\n",
              net.victim.net.num_nodes - 1, net.victim.driver.size,
              net.victim.receiver.size, net.victim.receiver_load / fF);
  std::printf("aggressors: %zu, total coupling %.1f fF\n\n",
              net.aggressors.size(), net.total_coupling_cap() / fF);

  // One engine, reused by every method (reduce-once, analyze-many).
  SuperpositionOptions sup;
  SuperpositionEngine eng(net, sup);
  std::printf("victim driver model: Ceff = %.2f fF, Rth = %.0f Ohm, "
              "ramp %.1f ps\n",
              eng.victim_model().ceff / fF, eng.victim_model().model.rth,
              eng.victim_model().model.tr / ps);

  // Traditional flow: Thevenin holding resistance.
  DelayNoiseOptions thev;
  thev.use_transient_holding = false;
  thev.method = AlignmentMethod::Exhaustive;
  const DelayNoiseResult r_thev = analyze_delay_noise(eng, thev);

  // Paper flow: transient holding resistance.
  DelayNoiseOptions rtr = thev;
  rtr.use_transient_holding = true;
  const DelayNoiseResult r_rtr = analyze_delay_noise(eng, rtr);

  std::printf("holding resistance: Rth = %.0f Ohm -> Rtr = %.0f Ohm\n",
              r_rtr.rth, r_rtr.holding_r);
  std::printf("composite pulse: height %.3f V, width %.1f ps\n",
              r_rtr.composite.params.height, r_rtr.composite.params.width / ps);
  std::printf("alignment: peak at %.1f ps, alignment voltage %.3f V\n\n",
              r_rtr.alignment.t_peak / ps, r_rtr.alignment.align_voltage);

  // Golden: full nonlinear simulation at the same aggressor alignment.
  const GoldenResult golden =
      golden_nonlinear(net, absolute_shifts(r_rtr), sup);

  std::printf("%-28s %14s %14s\n", "flow", "delay noise", "vs golden");
  std::printf("----------------------------------------------------------\n");
  const double g = golden.delay_noise();
  std::printf("%-28s %11.2f ps %13s\n", "full nonlinear (golden)", g / ps, "-");
  std::printf("%-28s %11.2f ps %+12.1f%%\n", "linear, Thevenin holding R",
              r_thev.delay_noise() / ps, 100.0 * (r_thev.delay_noise() - g) / g);
  std::printf("%-28s %11.2f ps %+12.1f%%\n", "linear, transient holding R",
              r_rtr.delay_noise() / ps, 100.0 * (r_rtr.delay_noise() - g) / g);
  return 0;
}
