// Block-level flow: screen a population of extracted nets with the cheap
// moment-level estimate, then run the full paper analysis only on the
// worst offenders — the triage a production noise tool performs before
// spending simulation time.
//
// Usage: block_screening [num_nets]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "clarinet/analyzer.hpp"
#include "clarinet/screening.hpp"
#include "rcnet/random_nets.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace dn;
using namespace dn::units;

int main(int argc, char** argv) {
  const int n_nets = argc > 1 ? std::atoi(argv[1]) : 20;
  const int analyze_top = 5;

  Rng rng(90210);
  std::vector<CoupledNet> nets;
  for (int i = 0; i < n_nets; ++i) nets.push_back(random_coupled_net(rng));
  std::printf("block with %d coupled nets; screening...\n\n", n_nets);

  const auto order = rank_by_severity(nets);

  Table tbl({"rank", "net", "est_noise_V", "est_dN_ps", "full_dN_ps",
             "analyzed"});
  NoiseAnalyzer analyzer;
  double screened_total = 0.0, analyzed_total = 0.0;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t i = order[rank];
    const ScreeningEstimate est = screen_net(nets[i]);
    double full = -1.0;
    const bool analyze = rank < static_cast<std::size_t>(analyze_top);
    if (analyze) {
      full = analyzer.analyze(nets[i]).delay_noise();
      analyzed_total += full;
    }
    screened_total += est.dn_est;
    tbl.add_row({Table::fmt(static_cast<double>(rank + 1)),
                 Table::fmt(static_cast<double>(i)),
                 Table::fmt(est.vn_est, 4), Table::fmt(est.dn_est / ps, 4),
                 analyze ? Table::fmt(full / ps, 4) : "-",
                 analyze ? "yes" : "no"});
  }
  tbl.print(std::cout);

  std::printf("\nanalyzed the top %d of %d nets in full "
              "(%zu alignment tables characterized and cached);\n"
              "the remaining %d were cleared by the screening estimate.\n",
              analyze_top, n_nets, analyzer.tables_cached(),
              n_nets - analyze_top);
  return 0;
}
