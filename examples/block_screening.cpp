// Block-level flow: screen a population of extracted nets with the cheap
// moment-level estimate, then run the full paper analysis only on the
// worst offenders — the triage a production noise tool performs before
// spending simulation time.
//
// The triage is built into BatchAnalyzer: setting
// BatchOptions::screen_threshold makes the batch engine run the
// screening estimate first and skip the full analysis for every net
// whose estimated delay noise falls below the threshold.
//
// Usage: block_screening [num_nets]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "clarinet/batch_analyzer.hpp"
#include "clarinet/screening.hpp"
#include "rcnet/random_nets.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace dn;
using namespace dn::units;

int main(int argc, char** argv) {
  const int n_nets = argc > 1 ? std::atoi(argv[1]) : 20;
  const double threshold = 30 * ps;

  Rng rng(90210);
  std::vector<CoupledNet> nets;
  for (int i = 0; i < n_nets; ++i) nets.push_back(random_coupled_net(rng));
  std::printf("block with %d coupled nets; screening below %.0f ps...\n\n",
              n_nets, threshold / ps);

  BatchOptions opts;
  opts.screen_threshold = threshold;
  opts.top_k = 5;
  BatchAnalyzer engine(opts);
  const BatchResult res = engine.analyze(nets);

  // Report in severity order of the cheap estimate, worst first.
  const auto order = rank_by_severity(nets);

  Table tbl({"rank", "net", "est_noise_V", "est_dN_ps", "full_dN_ps",
             "analyzed"});
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t i = order[rank];
    const StatusOr<ScreeningEstimate> est = try_screen_net(nets[i]);
    const BatchNetResult& nr = res.nets[i];
    const bool analyzed = nr.status.ok() && !nr.screened_out;
    tbl.add_row({Table::fmt(static_cast<double>(rank + 1)),
                 Table::fmt(static_cast<double>(i)),
                 est.ok() ? Table::fmt(est->vn_est, 4) : "?",
                 est.ok() ? Table::fmt(est->dn_est / ps, 4) : "?",
                 analyzed ? Table::fmt(nr.result.delay_noise() / ps, 4) : "-",
                 analyzed ? "yes" : "no"});
  }
  tbl.print(std::cout);

  std::printf("\nanalyzed %zu of %d nets in full "
              "(%zu alignment tables characterized and cached);\n"
              "the remaining %zu were cleared by the screening estimate.\n",
              res.stats.analyzed, n_nets, engine.cache()->tables_cached(),
              res.stats.screened_out);
  return 0;
}
