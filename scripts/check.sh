#!/usr/bin/env bash
# Repo gate: warnings-as-errors build, the tier-1 ctest suite, an
# ASan+UBSan pass over the solver/simulator core (the sparse LU and the
# Newton restamp path are pointer-heavy index juggling — exactly what the
# address sanitizer is for), a ThreadSanitizer pass over the batch
# engine (the one component with real cross-thread sharing: the
# characterization cache and the worker pool), a fuzz smoke stage over
# the SPEF parser, and a chaos stage that runs a batch under injected
# faults at every site and demands degraded-not-crashed, job-count-
# independent output (DESIGN.md §10).
#
# Usage: scripts/check.sh [--no-asan] [--no-tsan] [--no-fuzz] [--no-chaos]
#                         [--no-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
run_asan=1
run_tsan=1
run_fuzz=1
run_chaos=1
run_bench=1
for arg in "$@"; do
  case "$arg" in
    --no-asan) run_asan=0 ;;
    --no-tsan) run_tsan=0 ;;
    --no-fuzz) run_fuzz=0 ;;
    --no-chaos) run_chaos=0 ;;
    --no-bench) run_bench=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== build (DN_WERROR=ON) =="
cmake -B build -S . -DDN_WERROR=ON >/dev/null
cmake --build build -j "$jobs"

echo "== tier-1 tests =="
ctest --test-dir build -L tier1 --output-on-failure -j "$jobs"

if [[ "$run_asan" == 1 ]]; then
  echo "== Address+UB sanitizer: solver and simulator core =="
  cmake -B build-asan -S . -DDN_SANITIZE=address,undefined -DDN_WERROR=ON >/dev/null
  cmake --build build-asan -j "$jobs" \
    --target test_matrix test_sparse test_linear_sim test_nonlinear_sim \
             test_adaptive_sim
  ./build-asan/tests/test_matrix
  ./build-asan/tests/test_sparse
  ./build-asan/tests/test_linear_sim
  ./build-asan/tests/test_nonlinear_sim
  ./build-asan/tests/test_adaptive_sim
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "== ThreadSanitizer: batch engine =="
  cmake -B build-tsan -S . -DDN_SANITIZE=thread -DDN_WERROR=ON >/dev/null
  cmake --build build-tsan -j "$jobs" \
    --target test_batch_analyzer test_metrics test_fault_tolerance test_server
  ./build-tsan/tests/test_batch_analyzer
  ./build-tsan/tests/test_metrics
  ./build-tsan/tests/test_fault_tolerance
  ./build-tsan/tests/test_server
fi

if [[ "$run_fuzz" == 1 ]]; then
  echo "== fuzz smoke: SPEF parser (~30 s budget) =="
  # The standalone driver is deterministic: the seed corpus plus a fixed
  # mutation seed. Iteration count sized to finish well inside 30 s.
  timeout 30 ./build/tools/fuzz_spef tests/corpus/spef --iters 40000 --seed 1

  echo "== fuzz smoke: JSON parser + NDJSON request surface (~30 s budget) =="
  # Dual-target: every input goes through json::parse AND a resident
  # Session::handle_line with tight protocol limits. Iteration count is
  # lower than the SPEF stage because mutated seeds routinely form valid
  # load_design/analyze requests that do real work.
  timeout 30 ./build/tools/fuzz_json tests/corpus/json --iters 4000 --seed 1
fi

if [[ "$run_chaos" == 1 ]]; then
  echo "== chaos: injected faults must degrade, not crash =="
  # A batch over SPEF decks so all five sites are live: parse (deck
  # load), cache/factor/newton (analysis), task (worker boundary). The
  # decks are distinct variants (the parse probe keys on deck content).
  # Three seeds x one mixed spec. Demands per seed: exit 0 (isolation
  # kept at least one net analyzable) and stdout byte-identical between
  # --jobs 1 and --jobs 8 (the injection hashes stable identities, never
  # the schedule).
  chaosdir=build/chaos-decks
  mkdir -p "$chaosdir"
  rm -f "$chaosdir"/*.spef
  for i in 1 2 3 4 5 6 7 8; do
    { head -1 tests/corpus/spef/minimal.spef
      echo "*DESIGN chaos$i"
      tail -n +2 tests/corpus/spef/minimal.spef
    } > "$chaosdir/net$i.spef"
  done
  chaos_args=(--batch "$chaosdir"/net*.spef --top 5 --solver sparse
              --max-retries 2 --inject-faults
              parse:0.25,cache:0.4,factor:0.4,newton:0.02,task:0.3)
  for fault_seed in 1 2 3; do
    out1=$(./build/tools/dnoise_cli "${chaos_args[@]}" --fault-seed "$fault_seed" --jobs 1 2>/dev/null)
    out8=$(./build/tools/dnoise_cli "${chaos_args[@]}" --fault-seed "$fault_seed" --jobs 8 2>/dev/null)
    if [[ "$out1" != "$out8" ]]; then
      echo "chaos: output differs between --jobs 1 and --jobs 8 (seed $fault_seed)" >&2
      diff <(printf '%s\n' "$out1") <(printf '%s\n' "$out8") >&2 || true
      exit 1
    fi
    echo "chaos seed $fault_seed: $(printf '%s\n' "$out1" | head -1)"
  done
  # Same invariant with the fidelity ladder enabled: tier decisions and
  # pruning are per-net and deterministic, so ladder output must also be
  # byte-identical across job counts under injected faults.
  ladder_args=("${chaos_args[@]}" --fidelity 2 --fidelity-threshold 5)
  lout1=$(./build/tools/dnoise_cli "${ladder_args[@]}" --fault-seed 2 --jobs 1 2>/dev/null)
  lout8=$(./build/tools/dnoise_cli "${ladder_args[@]}" --fault-seed 2 --jobs 8 2>/dev/null)
  if [[ "$lout1" != "$lout8" ]]; then
    echo "chaos: ladder output differs between --jobs 1 and --jobs 8" >&2
    diff <(printf '%s\n' "$lout1") <(printf '%s\n' "$lout8") >&2 || true
    exit 1
  fi
  echo "chaos ladder: $(printf '%s\n' "$lout1" | head -1)"

  echo "== chaos: crash recovery (kill -9 + SIGTERM against --state-dir) =="
  # One scripted ECO session run to completion as the reference, then
  # interrupted at seeded points: kill -9 at acked-request boundaries
  # (restart with --recover, finish the script, final report must be
  # byte-identical), a raced kill mid-mutation (recovery must come up
  # clean), and a SIGTERM drain (exit 0, valid snapshot, byte-identical
  # finish). DESIGN.md section 15.
  python3 scripts/chaos_recovery.py
fi

if [[ "$run_bench" == 1 ]]; then
  echo "== perf gate: transient engine (bench_perf_sim) =="
  # Fixed-step full Newton vs adaptive + modified Newton + warm start on
  # the 5000-node coupled bus. The binary exits nonzero unless the e2e
  # speedup is >= 10x, newton_iters and solver.refactors are cut >= 5x,
  # and the reported delays stay within tolerance (DESIGN.md §12).
  ./build/bench/bench_perf_sim --out build/BENCH_perf_sim.json

  echo "== perf gate: fidelity ladder (bench_perf_ladder) =="
  # Ladder on vs off over a quiet-heavy population. The binary exits
  # nonzero unless NO pruned net shows a violation in the ladder-off run
  # (zero missed violations), the pruning rate is >= 60%, and the
  # end-to-end speedup is >= 5x (DESIGN.md §13).
  ./build/bench/bench_perf_ladder --out build/BENCH_perf_ladder.json

  echo "== perf gate: batch engine throughput (bench_perf_batch) =="
  # Byte-identical reports across job counts (the binary enforces that
  # itself) plus a single-job throughput floor: 24.1 nets/s is the
  # pre-kernel-fast-path baseline (DESIGN.md §14) — dipping below it
  # means the small-dense kernels / batched probing regressed.
  ./build/bench/bench_perf_batch --out build/BENCH_perf_batch.json
  python3 - build/BENCH_perf_batch.json <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
one = [row for row in r["runs"] if row["jobs"] == 1]
assert one, "no single-job run recorded"
nps = one[0]["nets_per_s"]
floor = 24.1
assert nps >= floor, (
    f"batch throughput regression: {nps:.1f} nets/s at --jobs 1 "
    f"(floor {floor}, pre-fast-path baseline)")
print(f"batch perf gate: {nps:.1f} nets/s at --jobs 1 (floor {floor})")
PY

  echo "== native-codegen build (DN_NATIVE=ON): kernel equivalence =="
  # -march=native changes instruction selection (FMA contraction, AVX);
  # the small-dense bit-identity contract must hold WITHIN any one build,
  # so the BackendEquivalence suite runs again under host-tuned codegen.
  cmake -B build-native -S . -DDN_NATIVE=ON -DDN_WERROR=ON >/dev/null
  cmake --build build-native -j "$jobs" --target test_matrix test_arena
  ./build-native/tests/test_matrix
  ./build-native/tests/test_arena
fi

echo "== server smoke: scripted NDJSON session against --serve =="
# A pipelined session: load a design, analyze, apply an ECO, re-analyze
# (must touch only the dirty closure), run one fault-injected request
# (must degrade/fail cleanly, not crash), then shut down. The python
# shim validates the protocol invariants — one response per request,
# ids echoed in order, schema_version everywhere — and exits nonzero on
# any violation, which fails this stage.
printf '%s\n' \
  '{"id":1,"verb":"ping"}' \
  '{"id":2,"verb":"load_design","design":{"random":{"seed":7,"nets":10,"neighbors":2}}}' \
  '{"id":3,"verb":"analyze"}' \
  '{"id":4,"verb":"update_net","net":"n4","scale_c":1.3}' \
  '{"id":5,"verb":"analyze"}' \
  '{"id":6,"verb":"update_net","net":"n7","scale_c":1.2}' \
  '{"id":7,"verb":"analyze","inject_faults":"newton:0.5,cache:0.5","fault_seed":3}' \
  '{"id":8,"verb":"not_a_verb"}' \
  '{"id":9,"verb":"stats"}' \
  '{"id":10,"verb":"shutdown"}' \
  | ./build/tools/dnoise_cli --serve --jobs 2 2>/dev/null \
  > build/serve_smoke.ndjson
python3 - build/serve_smoke.ndjson <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    resps = [json.loads(line) for line in f if line.strip()]
assert len(resps) == 10, f"expected 10 responses, got {len(resps)}"
for i, r in enumerate(resps, 1):
    assert r["id"] == i, f"response order broken at {i}: {r}"
    assert r["schema_version"] == 2, f"missing schema_version: {r}"
ok = {i: r["ok"] for i, r in enumerate(resps, 1)}
assert all(ok[i] for i in (1, 2, 3, 4, 5, 6, 9, 10)), f"unexpected failure: {ok}"
# The fault-injected analyze must degrade or fail CLEANLY: either an ok
# report (per-net failures recorded inside it) or a Status error.
assert ok[7] or resps[6]["error"]["code"], resps[6]
assert not ok[8] and resps[7]["error"]["code"] == "INVALID_ARGUMENT", resps[7]
assert resps[4]["result"]["reanalyzed"] == 5, resps[4]["result"]["reanalyzed"]
assert resps[8]["result"]["requests"] == 9, resps[8]["result"]
print("server smoke: 10 responses, in order, dirty closure = 5 nets, "
      "fault-injected request handled " + ("ok" if ok[7] else "as clean error"))
PY

echo "== all checks passed =="
