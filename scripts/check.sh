#!/usr/bin/env bash
# Repo gate: warnings-as-errors build, the tier-1 ctest suite, and a
# ThreadSanitizer pass over the batch engine (the one component with real
# cross-thread sharing: the characterization cache and the worker pool).
#
# Usage: scripts/check.sh [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
run_tsan=1
[[ "${1:-}" == "--no-tsan" ]] && run_tsan=0

echo "== build (DN_WERROR=ON) =="
cmake -B build -S . -DDN_WERROR=ON >/dev/null
cmake --build build -j "$jobs"

echo "== tier-1 tests =="
ctest --test-dir build -L tier1 --output-on-failure -j "$jobs"

if [[ "$run_tsan" == 1 ]]; then
  echo "== ThreadSanitizer: batch engine =="
  cmake -B build-tsan -S . -DDN_SANITIZE=thread -DDN_WERROR=ON >/dev/null
  cmake --build build-tsan -j "$jobs" --target test_batch_analyzer test_metrics
  ./build-tsan/tests/test_batch_analyzer
  ./build-tsan/tests/test_metrics
fi

echo "== all checks passed =="
