#!/usr/bin/env bash
# Repo gate: warnings-as-errors build, the tier-1 ctest suite, an
# ASan+UBSan pass over the solver/simulator core (the sparse LU and the
# Newton restamp path are pointer-heavy index juggling — exactly what the
# address sanitizer is for), and a ThreadSanitizer pass over the batch
# engine (the one component with real cross-thread sharing: the
# characterization cache and the worker pool).
#
# Usage: scripts/check.sh [--no-asan] [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
run_asan=1
run_tsan=1
for arg in "$@"; do
  case "$arg" in
    --no-asan) run_asan=0 ;;
    --no-tsan) run_tsan=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== build (DN_WERROR=ON) =="
cmake -B build -S . -DDN_WERROR=ON >/dev/null
cmake --build build -j "$jobs"

echo "== tier-1 tests =="
ctest --test-dir build -L tier1 --output-on-failure -j "$jobs"

if [[ "$run_asan" == 1 ]]; then
  echo "== Address+UB sanitizer: solver and simulator core =="
  cmake -B build-asan -S . -DDN_SANITIZE=address,undefined -DDN_WERROR=ON >/dev/null
  cmake --build build-asan -j "$jobs" \
    --target test_matrix test_sparse test_linear_sim test_nonlinear_sim
  ./build-asan/tests/test_matrix
  ./build-asan/tests/test_sparse
  ./build-asan/tests/test_linear_sim
  ./build-asan/tests/test_nonlinear_sim
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "== ThreadSanitizer: batch engine =="
  cmake -B build-tsan -S . -DDN_SANITIZE=thread -DDN_WERROR=ON >/dev/null
  cmake --build build-tsan -j "$jobs" --target test_batch_analyzer test_metrics
  ./build-tsan/tests/test_batch_analyzer
  ./build-tsan/tests/test_metrics
fi

echo "== all checks passed =="
