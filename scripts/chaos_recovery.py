#!/usr/bin/env python3
"""Crash-recovery chaos driver for the resident server (DESIGN.md section 15).

Runs one scripted ECO session to completion as the reference, then replays
the same session against a durable server (--state-dir) and interrupts it:

  * kill -9 at several acked-request boundaries, restart with --recover,
    finish the script -- the final analyze report must be BYTE-IDENTICAL
    to the uninterrupted reference (the journal-before-apply discipline
    guarantees every acknowledged mutation survives);
  * kill -9 racing an un-acked mutation -- recovery must come up clean
    (the mutation may or may not have committed; either state analyzes);
  * SIGTERM mid-session -- the server must drain, park a valid snapshot,
    and exit 0; a --recover restart must again match the reference.

Exits nonzero on any divergence. Deterministic: fixed design seed, fixed
kill points, no timing-dependent assertions.
"""
import json
import os
import shutil
import signal
import subprocess
import sys

CLI = "./build/tools/dnoise_cli"
STATE_ROOT = "build/chaos-recovery"

# One ECO session: load, analyze, a burst of topology/driver edits, and a
# final full analyze whose report is the byte-diffed artifact. scale_c /
# scale_r are multiplicative, so replaying an edit twice would diverge --
# exactly the bug class the acked-boundary kills are hunting.
SCRIPT = [
    {"verb": "load_design",
     "design": {"random": {"seed": 11, "nets": 8, "neighbors": 2}}},
    {"verb": "analyze"},
    {"verb": "update_net", "net": "n2", "scale_c": 1.3},
    {"verb": "update_net", "net": "n5", "scale_r": 1.1},
    {"verb": "analyze"},
    {"verb": "update_driver", "net": "n1", "size": 1.4},
    {"verb": "update_net", "net": "n3", "scale_c": 0.85},
    {"verb": "analyze"},
]


def start(extra):
    return subprocess.Popen(
        [CLI, "--serve", "--jobs", "2"] + extra,
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True, bufsize=1)


def rpc(proc, rid, req):
    body = dict(req)
    body["id"] = rid
    proc.stdin.write(json.dumps(body) + "\n")
    proc.stdin.flush()
    line = proc.stdout.readline()
    if not line:
        raise AssertionError(f"server died answering request {rid}: {req}")
    resp = json.loads(line)
    if resp.get("id") != rid:
        raise AssertionError(f"response id mismatch: sent {rid}, got {resp}")
    if not resp.get("ok"):
        raise AssertionError(f"request {rid} failed: {resp}")
    return resp


def run_script(proc, reqs, first_id=1):
    last = None
    for offset, req in enumerate(reqs):
        last = rpc(proc, first_id + offset, req)
    return last


def finish(proc):
    proc.stdin.close()
    rc = proc.wait(timeout=120)
    if rc != 0:
        raise AssertionError(f"server exited {rc}")


def report_bytes(resp):
    return json.dumps(resp["result"]["report"], sort_keys=True)


def fresh_dir(name):
    path = os.path.join(STATE_ROOT, name)
    shutil.rmtree(path, ignore_errors=True)
    os.makedirs(path)
    return path


def recover_and_finish(state_dir, remaining, first_id):
    proc = start(["--state-dir", state_dir, "--recover"])
    stats = rpc(proc, first_id, {"verb": "stats"})
    dur = stats["result"]["durability"]
    if not dur.get("recovered"):
        raise AssertionError(f"stats does not report recovery: {dur}")
    last = run_script(proc, remaining, first_id + 1)
    finish(proc)
    return last


def main():
    os.makedirs(STATE_ROOT, exist_ok=True)

    ref_proc = start([])
    reference = report_bytes(run_script(ref_proc, SCRIPT))
    finish(ref_proc)

    # Acked-boundary kills: every request up to the kill point got its
    # response, so journal-before-apply promises the restart sees all of
    # them. --snapshot-every 2 makes the later points exercise snapshot
    # + journal-tail replay, the earlier ones journal-only replay.
    for kill_after in (1, 3, 6):
        state = fresh_dir(f"kill{kill_after}")
        proc = start(["--state-dir", state, "--snapshot-every", "2"])
        run_script(proc, SCRIPT[:kill_after])
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
        last = recover_and_finish(state, SCRIPT[kill_after:],
                                  first_id=kill_after + 1)
        got = report_bytes(last)
        if got != reference:
            sys.stderr.write(
                f"chaos-recovery: kill -9 after request {kill_after}: "
                f"recovered report diverges from reference\n")
            return 1
        print(f"chaos-recovery: kill -9 after request {kill_after}: "
              f"recovered report byte-identical")

    # Raced kill: the mutation is in flight (no response read) when the
    # KILL lands, so it may or may not have committed -- torn-tail
    # territory. No byte contract, but recovery must come up clean and
    # analyze successfully from whichever state survived.
    state = fresh_dir("raced")
    proc = start(["--state-dir", state])
    run_script(proc, SCRIPT[:2])
    proc.stdin.write(json.dumps(
        {"id": 3, "verb": "update_net", "net": "n2", "scale_c": 1.3}) + "\n")
    proc.stdin.flush()
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=60)
    recover_and_finish(state, [{"verb": "analyze"}], first_id=4)
    print("chaos-recovery: raced kill -9: recovery clean, analyze ok")

    # Graceful path: SIGTERM with stdin still open must drain, snapshot,
    # and exit 0; the parked state must finish the script byte-identically.
    state = fresh_dir("sigterm")
    proc = start(["--state-dir", state, "--snapshot-every", "1000"])
    run_script(proc, SCRIPT[:4])
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=120)
    if rc != 0:
        sys.stderr.write(f"chaos-recovery: SIGTERM exit code {rc}, want 0\n")
        return 1
    if not os.path.exists(os.path.join(state, "snapshot.json")):
        sys.stderr.write("chaos-recovery: SIGTERM left no snapshot.json\n")
        return 1
    last = recover_and_finish(state, SCRIPT[4:], first_id=5)
    if report_bytes(last) != reference:
        sys.stderr.write(
            "chaos-recovery: post-SIGTERM report diverges from reference\n")
        return 1
    print("chaos-recovery: SIGTERM drained, exit 0, parked state "
          "byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
